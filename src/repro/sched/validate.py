"""Independent schedule validation.

The scheduler is trusted nowhere: this module re-derives every
invariant a CRUSADE schedule must satisfy directly from the schedule
data and the specification, without reusing the scheduler's own
bookkeeping.  It is used by the test suite's property checks and by
:func:`repro.core.report.CoSynthesisResult` consumers who want a
machine-checkable certificate for a synthesized system.

Invariants checked
------------------
1. **Coverage** -- every explicit copy instance of every task is
   scheduled exactly once, and every edge instance has a transfer
   record.
2. **Release** -- no task instance starts before its copy's arrival.
3. **Precedence** -- a task starts no earlier than each incoming edge's
   transfer finish, which itself starts no earlier than the producer's
   finish.
4. **Processor exclusivity** -- intervals of task instances placed on
   one processor never overlap (split/preempted tasks are exempt from
   the simple containment check but still must not exceed their span).
5. **Link exclusivity** -- transfer intervals on one link never
   overlap.
6. **Mode consistency** -- a PPE executes a task only inside a window
   of a mode whose configuration contains the task's cluster, and
   windows of different modes are separated by at least the boot time
   recorded for the later window.
7. **Durations** -- every non-preempted task instance occupies at
   least its WCET on its placement (plus dispatch overhead on
   processors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.architecture import Architecture
from repro.cluster.clustering import ClusteringResult
from repro.graph.association import AssociationArray
from repro.graph.spec import SystemSpec
from repro.resources.pe import PEKind, ProcessorType
from repro.sched.scheduler import Schedule
from repro.units import TIME_EPS


@dataclass
class ValidationReport:
    """Outcome of a validation run: a list of violation strings."""

    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)

    def __repr__(self) -> str:
        if self.ok:
            return "ValidationReport(ok)"
        return "ValidationReport(%d violations; first: %s)" % (
            len(self.violations),
            self.violations[0],
        )


def validate_schedule(
    schedule: Schedule,
    spec: SystemSpec,
    assoc: AssociationArray,
    clustering: ClusteringResult,
    arch: Architecture,
) -> ValidationReport:
    """Check every schedule invariant; returns the violation list."""
    report = ValidationReport()
    _check_coverage(report, schedule, spec, assoc)
    _check_release_and_precedence(report, schedule, spec, assoc)
    _check_serial_resources(report, schedule, arch)
    _check_modes(report, schedule, spec, clustering, arch)
    _check_durations(report, schedule, spec, clustering, arch)
    return report


# ----------------------------------------------------------------------
def _check_coverage(report, schedule, spec, assoc) -> None:
    for instance in assoc.iter_explicit():
        graph = spec.graph(instance.graph)
        for task_name in graph.tasks:
            key = (instance.graph, instance.copy, task_name)
            if key not in schedule.tasks:
                report.add("task instance %r not scheduled" % (key,))
        for (src, dst) in graph.edges:
            edge_key = (instance.graph, instance.copy, src, dst)
            if edge_key not in schedule.edges:
                report.add("edge instance %r not scheduled" % (edge_key,))


def _check_release_and_precedence(report, schedule, spec, assoc) -> None:
    arrivals = {
        (c.graph, c.copy): c.arrival for c in assoc.iter_explicit()
    }
    for key, placed in schedule.tasks.items():
        graph_name, copy, task_name = key
        arrival = arrivals.get((graph_name, copy))
        if arrival is None:
            continue
        if placed.start < arrival - TIME_EPS:
            report.add(
                "task %r starts %.9f before arrival %.9f"
                % (key, placed.start, arrival)
            )
        graph = spec.graph(graph_name)
        for pred in graph.predecessors(task_name):
            edge_key = (graph_name, copy, pred, task_name)
            edge = schedule.edges.get(edge_key)
            pred_placed = schedule.tasks.get((graph_name, copy, pred))
            if edge is None or pred_placed is None:
                continue
            if edge.start < pred_placed.finish - TIME_EPS:
                report.add(
                    "edge %r starts before producer finishes" % (edge_key,)
                )
            if placed.start < edge.finish - TIME_EPS:
                report.add(
                    "task %r starts before edge %r arrives" % (key, edge_key)
                )


def _intervals_overlap(a: Tuple[float, float], b: Tuple[float, float]) -> bool:
    return a[0] < b[1] - TIME_EPS and b[0] < a[1] - TIME_EPS


def _check_serial_resources(report, schedule, arch) -> None:
    # Processors: non-preempted tasks must not overlap one another.
    by_pe: Dict[str, List] = {}
    for placed in schedule.tasks.values():
        if placed.pe_id is None or placed.pe_id not in arch.pes:
            continue
        if arch.pe(placed.pe_id).pe_type.kind is PEKind.PROCESSOR:
            by_pe.setdefault(placed.pe_id, []).append(placed)
    for pe_id, placements in by_pe.items():
        solid = sorted(
            (p for p in placements if not p.preempted),
            key=lambda p: p.start,
        )
        for a, b in zip(solid, solid[1:]):
            if _intervals_overlap((a.start, a.finish), (b.start, b.finish)):
                report.add(
                    "processor %s runs %r and %r simultaneously"
                    % (pe_id, a.key, b.key)
                )
    # Links: transfers serialize.
    by_link: Dict[str, List] = {}
    for edge in schedule.edges.values():
        if edge.link_id is not None:
            by_link.setdefault(edge.link_id, []).append(edge)
    for link_id, transfers in by_link.items():
        ordered = sorted(transfers, key=lambda e: e.start)
        for a, b in zip(ordered, ordered[1:]):
            if _intervals_overlap((a.start, a.finish), (b.start, b.finish)):
                report.add(
                    "link %s carries %r and %r simultaneously"
                    % (link_id, a.key, b.key)
                )


def _check_modes(report, schedule, spec, clustering, arch) -> None:
    for pe_id, timeline in schedule.ppe_timelines.items():
        windows = timeline.windows
        # Windows ordered, non-overlapping, boot gaps respected.
        for a, b in zip(windows, windows[1:]):
            if a.end > b.start + TIME_EPS:
                report.add("PPE %s windows overlap" % (pe_id,))
            if a.mode != b.mode and b.start - a.end < b.boot_time - TIME_EPS:
                report.add(
                    "PPE %s switches modes %d->%d with gap %.6f < boot %.6f"
                    % (pe_id, a.mode, b.mode, b.start - a.end, b.boot_time)
                )
        if pe_id not in arch.pes:
            continue
        pe = arch.pe(pe_id)
        for placed in schedule.tasks.values():
            if placed.pe_id != pe_id:
                continue
            graph_name, _, task_name = placed.key
            cluster = clustering.cluster_of(graph_name, task_name)
            try:
                allowed = set(pe.modes_of_cluster(cluster.name))
            except Exception:  # pragma: no cover - stale placement
                report.add(
                    "task %r on %s has no cluster placement" % (placed.key, pe_id)
                )
                continue
            covered = any(
                w.mode in allowed
                and w.start <= placed.start + TIME_EPS
                and placed.finish <= w.end + TIME_EPS
                for w in windows
            )
            if not covered:
                report.add(
                    "task %r executes outside any window of its modes %s"
                    % (placed.key, sorted(allowed))
                )


def _check_durations(report, schedule, spec, clustering, arch) -> None:
    for key, placed in schedule.tasks.items():
        graph_name, _, task_name = key
        task = spec.graph(graph_name).task(task_name)
        span = placed.finish - placed.start
        if placed.pe_id is None:
            expected = task.min_exec_time
            if span < expected - TIME_EPS:
                report.add("virtual task %r shorter than best case" % (key,))
            continue
        if placed.pe_id not in arch.pes:
            report.add("task %r placed on unknown PE %r" % (key, placed.pe_id))
            continue
        pe_type = arch.pe(placed.pe_id).pe_type
        expected = task.wcet_on(pe_type.name)
        if isinstance(pe_type, ProcessorType):
            expected += pe_type.context_switch_time
        if span < expected - TIME_EPS:
            report.add(
                "task %r span %.9f below required %.9f on %s"
                % (key, span, expected, pe_type.name)
            )
