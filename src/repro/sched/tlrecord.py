"""Timeline operation trace recording (``REPRO_TIMELINE_TRACE``).

The differential oracle in ``tests/sched/oracle.py`` proves the
timeline implementations interchangeable on randomized operation
sequences -- but random sequences only approximate the distribution a
real synthesis produces (bursts of same-resource occupies, ready
times that revisit earlier gaps, mode joins dominating inserts).
This module captures the *real* thing once: set
``REPRO_TIMELINE_TRACE=/path/ops.jsonl`` and every timeline the
planned scheduler builds is wrapped in a recording proxy that appends
one JSON line per operation.  The capture can then be replayed --
``tests/sched/oracle.py::replay_trace`` -- against every registered
implementation simultaneously, turning one NGXM run into a permanent
deterministic regression case (see ``tests/sched/traces/``).

Recording wraps the engine path's timeline factories (see
:meth:`repro.perf.fastsched.SchedulerContext` -- the path every real
workload runs); the legacy from-scratch scheduler is the linear
reference itself and needs no capture.  Proxies delegate everything
and record only the scheduler-facing mutations and queries, so a
traced run still produces byte-identical results; tracing costs one
dict + file append per operation, which is why it hides behind an
environment variable instead of a config knob.

``REPRO_TIMELINE_TRACE_LIMIT`` caps the recorded operation count
(default 500000 -- about 60 MB of JSONL, gzipping ~20x) so tracing a
full-scale run cannot fill a disk; the cap drops later operations,
keeping the prefix every implementation must still agree on.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Optional, Tuple

#: Environment variable naming the JSONL file to append operations to.
TRACE_ENV = "REPRO_TIMELINE_TRACE"

#: Environment variable capping recorded operations (int, default
#: :data:`DEFAULT_TRACE_LIMIT`).
TRACE_LIMIT_ENV = "REPRO_TIMELINE_TRACE_LIMIT"

#: Default operation cap per recorder.
DEFAULT_TRACE_LIMIT = 500_000


def trace_path() -> Optional[str]:
    """The ``REPRO_TIMELINE_TRACE`` target path, or None when unset."""
    value = os.environ.get(TRACE_ENV, "").strip()
    return value or None


def _jsonable(value: Any) -> Any:
    """Round-trippable JSON encoding of an op argument (tuples become
    lists; replay re-tuples them)."""
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


class TimelineRecorder:
    """Appends timeline operations to a JSONL file, thread-safely.

    One recorder serves every timeline of one scheduler context; each
    wrapped timeline gets a serial id so replay can reconstruct the
    per-resource operation streams.
    """

    def __init__(self, path: str, limit: Optional[int] = None) -> None:
        """Open ``path`` for appending, recording at most ``limit``
        operations (``REPRO_TIMELINE_TRACE_LIMIT`` or the default)."""
        if limit is None:
            try:
                limit = int(os.environ.get(TRACE_LIMIT_ENV, ""))
            except ValueError:
                limit = DEFAULT_TRACE_LIMIT
        self.limit = limit
        self._lock = threading.Lock()
        self._next_id = 0
        self._count = 0
        self._fh = open(path, "a", encoding="utf-8")
        self._fh.write(json.dumps({"version": 1}) + "\n")

    def _new_id(self, kind: str) -> int:
        with self._lock:
            tl_id = self._next_id
            self._next_id += 1
            self._fh.write(
                json.dumps({"new": tl_id, "kind": kind}) + "\n"
            )
            return tl_id

    def record(self, tl_id: int, op: str, args: List[Any]) -> None:
        """Append one operation, silently dropping past the cap."""
        with self._lock:
            if self._count >= self.limit:
                return
            self._count += 1
            self._fh.write(
                json.dumps(
                    {"t": tl_id, "op": op, "a": [_jsonable(a) for a in args]}
                )
                + "\n"
            )

    def close(self) -> None:
        """Flush and close the trace file."""
        with self._lock:
            self._fh.close()

    # ------------------------------------------------------------------
    def wrap_serial(self, factory):
        """A factory producing recording proxies over ``factory()``."""
        def make() -> "RecordingTimeline":
            return RecordingTimeline(factory(), self)
        return make

    def wrap_ppe(self, factory):
        """A factory producing recording proxies over PPE
        ``factory()`` timelines."""
        def make() -> "RecordingPpeModeTimeline":
            return RecordingPpeModeTimeline(factory(), self)
        return make


class _RecordingBase:
    """Delegating proxy: everything not recorded passes straight
    through to the wrapped timeline."""

    def __init__(self, inner, recorder: TimelineRecorder, kind: str) -> None:
        self._inner = inner
        self._recorder = recorder
        self._tl_id = recorder._new_id(kind)

    def __getattr__(self, name: str):
        """Delegate unrecorded attributes/methods to the inner
        timeline (``.intervals``, ``.windows``, reductions...)."""
        return getattr(self._inner, name)

    def __len__(self) -> int:
        """Length of the wrapped timeline."""
        return len(self._inner)


class RecordingTimeline(_RecordingBase):
    """Serial-resource timeline proxy recording the scheduler ops."""

    def __init__(self, inner, recorder: TimelineRecorder) -> None:
        """Wrap ``inner``, registering it with ``recorder``."""
        super().__init__(inner, recorder, "serial")

    def earliest_fit(self, ready: float, duration: float) -> float:
        """Record, then delegate."""
        self._recorder.record(self._tl_id, "earliest_fit", [ready, duration])
        return self._inner.earliest_fit(ready, duration)

    def occupy(self, start: float, duration: float, owner: tuple):
        """Record, then delegate."""
        self._recorder.record(self._tl_id, "occupy", [start, duration, owner])
        return self._inner.occupy(start, duration, owner)

    def split_fit(
        self,
        ready: float,
        duration: float,
        overhead: float,
        max_segments: int = 4,
    ):
        """Record, then delegate."""
        self._recorder.record(
            self._tl_id, "split_fit", [ready, duration, overhead, max_segments]
        )
        return self._inner.split_fit(ready, duration, overhead, max_segments)


class RecordingPpeModeTimeline(_RecordingBase):
    """Programmable-device timeline proxy recording ``place`` calls."""

    def __init__(self, inner, recorder: TimelineRecorder) -> None:
        """Wrap ``inner``, registering it with ``recorder``."""
        super().__init__(inner, recorder, "ppe")

    @property
    def windows(self):
        """The wrapped timeline's mode windows (consumers index it)."""
        return self._inner.windows

    def place(
        self,
        mode: int,
        ready: float,
        duration: float,
        boot_time: float,
        allowed: Optional[Dict[int, float]] = None,
        allowed_sorted: Optional[list] = None,
    ) -> Tuple[float, float]:
        """Record, then delegate (passing the hoisted sort through
        only when the inner timeline accepts it)."""
        self._recorder.record(
            self._tl_id, "place", [mode, ready, duration, boot_time, allowed]
        )
        if allowed_sorted is not None:
            return self._inner.place(
                mode, ready, duration, boot_time, allowed, allowed_sorted
            )
        return self._inner.place(mode, ready, duration, boot_time, allowed)


def load_trace(path: str) -> List[dict]:
    """Parse a trace file (plain or ``.gz``) into its event dicts.

    Owner tuples and other tuple-valued arguments come back as lists;
    replay code re-tuples them (see ``tests/sched/oracle.py``).
    """
    if path.endswith(".gz"):
        import gzip

        fh = gzip.open(path, "rt", encoding="utf-8")
    else:
        fh = open(path, "r", encoding="utf-8")
    with fh:
        return [json.loads(line) for line in fh if line.strip()]
