"""Resource timelines for the static scheduler.

Two kinds of resources exist:

* serially used resources (processors, links) -- an
  :class:`IntervalTimeline` of busy intervals with first-fit gap
  placement and restricted preemption support;
* programmable devices -- a :class:`PpeModeTimeline` of mode windows:
  tasks of the same configuration mode may overlap (they are separate
  circuit regions), tasks of different modes are separated by a reboot
  interval (Section 4.3).

ASICs execute their mapped tasks as independent circuit blocks, so
they need no timeline at all.

Both timeline kinds sit behind small abstract bases -- :class:`Timeline`
and :class:`ModeTimeline` -- that name exactly the operations the
scheduler and its consumers use.  Three implementations of each exist:
the naive linear classes here (the reference semantics), the
bisect-indexed flat-list classes in :mod:`repro.perf.fasttimeline`,
and the blocked-index classes in :mod:`repro.perf.treetimeline` for
the long, fragmented timelines of full-scale workloads.  They are
selected per run by ``CrusadeConfig.timeline`` and are bit-for-bit
interchangeable (enforced by the differential oracle in
``tests/sched/oracle.py``).
"""

from __future__ import annotations

import abc
import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.units import TIME_EPS, time_leq, time_lt


class Timeline(abc.ABC):
    """Abstract busy-interval timeline of one serially used resource.

    This is the contract the scheduler (:mod:`repro.sched.scheduler`)
    and the planned fast path (:mod:`repro.perf.fastsched`) actually
    program against: earliest-gap queries from a ready time, interval
    inserts, the restricted-preemption gap-splitting sweep, and the
    busy/span reductions the reporting layer reads after a run.
    Implementations are swappable per run (see
    ``CrusadeConfig.timeline``); the differential oracle in
    ``tests/sched/oracle.py`` holds every registered implementation to
    bit-identical answers, which is what makes swapping safe under the
    repo's byte-identity contract.
    """

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of busy intervals."""

    @property
    @abc.abstractmethod
    def intervals(self) -> List["BusyInterval"]:
        """Busy intervals in time order (read-only view)."""

    @abc.abstractmethod
    def earliest_fit(self, ready: float, duration: float) -> float:
        """Earliest start >= ``ready`` with ``duration`` of free time."""

    @abc.abstractmethod
    def occupy(self, start: float, duration: float, owner: tuple) -> Tuple[float, float]:
        """Mark [start, start+duration) busy; returns (start, end)."""

    @abc.abstractmethod
    def split_fit(
        self,
        ready: float,
        duration: float,
        overhead: float,
        max_segments: int = 4,
    ) -> Optional[List[Tuple[float, float]]]:
        """Segments running ``duration`` of work across free gaps, or
        None when no split within ``max_segments`` completes it."""

    @abc.abstractmethod
    def busy_time(self) -> float:
        """Total occupied time."""

    @abc.abstractmethod
    def span(self) -> Tuple[float, float]:
        """(first start, last end), or (0, 0) when empty."""


class ModeTimeline(abc.ABC):
    """Abstract mode-window timeline of one programmable device.

    The scheduler only ever calls :meth:`place`; the validation,
    Gantt, JSON-export and sharing-analysis layers read
    :attr:`windows` and the reboot reductions afterwards.  Like
    :class:`Timeline`, implementations are swappable per run and held
    to bit-identical placements by the differential oracle.
    """

    #: Mode windows in time order; implementations must expose a
    #: list-like, index-addressable sequence (consumers zip and slice).
    windows: List["ModeWindow"]

    @abc.abstractmethod
    def place(
        self,
        mode: int,
        ready: float,
        duration: float,
        boot_time: float,
        allowed: Optional[Dict[int, float]] = None,
    ) -> Tuple[float, float]:
        """Schedule a task at or after ``ready`` in any allowed mode;
        returns (start, finish)."""

    @abc.abstractmethod
    def busy_time(self) -> float:
        """Total window time (excludes reboot gaps)."""

    @abc.abstractmethod
    def span(self) -> Tuple[float, float]:
        """(first start, last end), or (0, 0) when empty."""


@dataclass
class BusyInterval:
    """One occupied stretch of a serial resource."""

    start: float
    end: float
    owner: tuple

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SchedulingError(
                "interval end %g before start %g" % (self.end, self.start)
            )


class IntervalTimeline(Timeline):
    """Busy intervals of a serially used resource, kept sorted.

    Supports first-fit placement at or after a ready time, and the
    restricted preemption primitive: splitting one busy interval to
    admit a higher-priority task, pushing the preempted remainder
    later.
    """

    def __init__(self) -> None:
        self._intervals: List[BusyInterval] = []
        self._starts: List[float] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._intervals)

    @property
    def intervals(self) -> List[BusyInterval]:
        """Busy intervals in time order (do not mutate)."""
        return self._intervals

    def _insert(self, interval: BusyInterval) -> None:
        index = bisect.bisect_left(self._starts, interval.start)
        # Shift right past equal starts for stable ordering.
        while (
            index < len(self._starts)
            and self._starts[index] <= interval.start
        ):
            index += 1
        self._intervals.insert(index, interval)
        self._starts.insert(index, interval.start)

    def earliest_fit(self, ready: float, duration: float) -> float:
        """Earliest start >= ``ready`` with ``duration`` of free time."""
        if duration < 0:
            raise SchedulingError("duration must be non-negative")
        candidate = ready
        for interval in self._intervals:
            if time_leq(interval.end, candidate):
                continue
            if time_leq(candidate + duration, interval.start):
                return candidate
            candidate = max(candidate, interval.end)
        return candidate

    def occupy(self, start: float, duration: float, owner: tuple) -> Tuple[float, float]:
        """Mark [start, start+duration) busy; returns (start, end).

        Raises when the span collides with an existing interval --
        callers must place via :meth:`earliest_fit` first.
        """
        end = start + duration
        for interval in self._intervals:
            if time_lt(start, interval.end) and time_lt(interval.start, end):
                raise SchedulingError(
                    "overlap: [%g, %g) collides with [%g, %g) owned by %r"
                    % (start, end, interval.start, interval.end, interval.owner)
                )
        busy = BusyInterval(start=start, end=end, owner=owner)
        self._insert(busy)
        return start, end

    # ------------------------------------------------------------------
    def running_at(self, when: float) -> Optional[BusyInterval]:
        """The interval covering time ``when``, if any."""
        for interval in self._intervals:
            if time_leq(interval.start, when) and time_lt(when, interval.end):
                return interval
            if interval.start > when:
                break
        return None

    def free_until_after(self, when: float) -> float:
        """First moment at or after ``when`` when nothing is running."""
        moment = when
        for interval in self._intervals:
            if time_leq(interval.end, moment):
                continue
            if time_lt(moment, interval.start):
                return moment
            moment = interval.end
        return moment

    def preempt_split(
        self,
        victim: BusyInterval,
        preempt_at: float,
        inserted_duration: float,
        overhead: float,
        new_owner: tuple,
    ) -> Tuple[Tuple[float, float], float]:
        """Split ``victim`` at ``preempt_at`` to run a new task.

        The victim keeps [start, preempt_at); the new task runs
        [preempt_at, preempt_at + inserted_duration); the victim's
        remainder resumes after the new task plus ``overhead`` and must
        fit before the next busy interval, else
        :class:`SchedulingError` is raised (the caller then declines to
        preempt).

        Returns ((new task start, new task end), victim's new finish).
        """
        if victim not in self._intervals:
            raise SchedulingError("victim interval is not on this timeline")
        if not (time_lt(victim.start, preempt_at) and time_lt(preempt_at, victim.end)):
            raise SchedulingError(
                "preemption point %g outside victim (%g, %g)"
                % (preempt_at, victim.start, victim.end)
            )
        remainder = victim.end - preempt_at
        new_end = preempt_at + inserted_duration
        resume = new_end + overhead
        victim_finish = resume + remainder
        index = self._intervals.index(victim)
        if index + 1 < len(self._intervals):
            next_start = self._intervals[index + 1].start
            if time_lt(next_start, victim_finish):
                raise SchedulingError(
                    "preempted remainder would collide with the next interval"
                )
        # Rebuild: victim head, new task, victim tail.
        del self._intervals[index]
        del self._starts[index]
        self._insert(BusyInterval(victim.start, preempt_at, victim.owner))
        self._insert(BusyInterval(preempt_at, new_end, new_owner))
        self._insert(BusyInterval(resume, victim_finish, victim.owner))
        return (preempt_at, new_end), victim_finish

    def split_fit(
        self,
        ready: float,
        duration: float,
        overhead: float,
        max_segments: int = 4,
    ) -> Optional[List[Tuple[float, float]]]:
        """Segments that run ``duration`` of work from ``ready`` by
        filling free gaps, resuming after each busy stretch.

        Each resumption (segment after the first) costs ``overhead``
        extra work time -- the preemption overhead of Section 5.  A
        segment is only worth opening if it fits at least the overhead
        plus a sliver of real work.  Returns None when no split within
        ``max_segments`` completes the work (callers then fall back to
        the contiguous placement).
        """
        if duration < 0 or overhead < 0:
            raise SchedulingError("durations must be non-negative")
        segments: List[Tuple[float, float]] = []
        remaining = duration
        cursor = ready
        busy = sorted(self._intervals, key=lambda iv: iv.start)
        index = 0
        while remaining > TIME_EPS and len(segments) < max_segments:
            # Advance past busy intervals covering the cursor.
            while index < len(busy) and time_leq(busy[index].end, cursor):
                index += 1
            if index < len(busy) and time_leq(busy[index].start, cursor):
                cursor = busy[index].end
                continue
            gap_end = busy[index].start if index < len(busy) else float("inf")
            cost = remaining + (overhead if segments else 0.0)
            available = gap_end - cursor
            if time_leq(cost, available):
                segments.append((cursor, cursor + cost))
                remaining = 0.0
                break
            # Partial segment: only if it does useful work beyond the
            # resumption overhead.
            useful = available - (overhead if segments else 0.0)
            if useful > TIME_EPS:
                segments.append((cursor, gap_end))
                remaining -= useful
            cursor = gap_end
        if remaining > TIME_EPS:
            return None
        return segments

    def busy_time(self) -> float:
        """Total occupied time."""
        return sum(i.end - i.start for i in self._intervals)

    def span(self) -> Tuple[float, float]:
        """(first start, last end), or (0, 0) when empty."""
        if not self._intervals:
            return (0.0, 0.0)
        return (self._intervals[0].start, max(i.end for i in self._intervals))


@dataclass
class ModeWindow:
    """A stretch of time a programmable device executes tasks of one
    mode.

    ``boot_time`` is the time needed to reconfigure the device *into*
    this mode; whether the window actually pays it is derived from its
    predecessor (a window following a same-mode window switches
    nothing, and the first window is the power-up configuration).
    Consecutive same-mode windows are therefore harmless fragmentation
    -- the device simply stays configured across the idle gap.
    """

    mode: int
    start: float
    end: float
    boot_time: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


class PpeModeTimeline(ModeTimeline):
    """Mode windows of one programmable PE instance.

    Tasks of the *same* mode may overlap in time (separate circuit
    regions of the same configuration); a task of a *different* mode
    must wait for the current window to drain and for a reboot of the
    target mode's boot time.  Windows are kept non-overlapping and
    time-ordered; reboot accounting is derived: window ``i`` pays its
    ``boot_time`` exactly when window ``i-1`` has a different mode
    (window 0 is the power-up configuration, loaded from PROM before
    time zero).
    """

    def __init__(self) -> None:
        self.windows: List[ModeWindow] = []

    def last_window(self) -> Optional[ModeWindow]:
        """Most recent mode window, if any."""
        return self.windows[-1] if self.windows else None

    def _needs_boot(self, index: int) -> bool:
        """Whether window ``index`` pays its reboot."""
        return index > 0 and self.windows[index - 1].mode != self.windows[index].mode

    @property
    def reconfigurations(self) -> int:
        """Run-time mode switches on this device."""
        return sum(1 for i in range(len(self.windows)) if self._needs_boot(i))

    @property
    def boot_time_total(self) -> float:
        """Total time spent reconfiguring."""
        return sum(
            self.windows[i].boot_time
            for i in range(len(self.windows))
            if self._needs_boot(i)
        )

    def place(
        self,
        mode: int,
        ready: float,
        duration: float,
        boot_time: float,
        allowed: Optional[Dict[int, float]] = None,
    ) -> Tuple[float, float]:
        """Schedule a task at or after ``ready`` in any mode whose
        configuration carries it.

        ``allowed`` maps every usable mode to its boot time; it
        defaults to ``{mode: boot_time}``.  Clusters replicated across
        modes pass several entries, letting their tasks ride whichever
        configuration the device happens to be in (Figure 2(e)'s T1).

        Two kinds of candidate placements compete; the earliest finish
        wins:

        * **join** an existing window of an allowed mode at a start
          inside its busy span (concurrent circuit regions of one
          configuration), extending its end as long as the next
          window's reboot gap survives;
        * **insert** a fresh window of an allowed mode into any gap --
          before the first window, between two windows, or after the
          last.  Entering the gap costs that mode's boot time when the
          preceding window (if any) has a different mode, and the
          following window (if any) must retain room for its own
          reboot when its mode differs.  Same-mode windows across idle
          gaps are free: the device simply stays configured.

        Returns (start, finish).
        """
        if duration < 0 or boot_time < 0:
            raise SchedulingError("durations must be non-negative")
        if allowed is None:
            allowed = {mode: boot_time}
        if any(b < 0 for b in allowed.values()):
            raise SchedulingError("boot times must be non-negative")
        best: Optional[Tuple[float, float, str, int, int]] = None

        def consider(finish: float, start: float, how: str, index: int, m: int) -> None:
            nonlocal best
            if best is None or (finish, start) < (best[0], best[1]):
                best = (finish, start, how, index, m)

        n = len(self.windows)
        # Join candidates: allowed-mode windows whose busy span covers
        # the candidate start.
        for index, window in enumerate(self.windows):
            if window.mode not in allowed:
                continue
            start = max(ready, window.start)
            if time_lt(window.end, start):
                continue  # beyond the busy span: gap placement instead
            finish = start + duration
            new_end = max(window.end, finish)
            if index + 1 < n:
                nxt = self.windows[index + 1]
                gap_after = nxt.boot_time if nxt.mode != window.mode else 0.0
                if time_lt(nxt.start - gap_after, new_end):
                    continue
            consider(finish, start, "join", index, window.mode)
        # Gap candidates: gap g sits between windows[g] and
        # windows[g+1]; g = -1 is the region before the first window.
        for gap in range(-1, n):
            prev = self.windows[gap] if gap >= 0 else None
            nxt = self.windows[gap + 1] if gap + 1 < n else None
            for m, m_boot in sorted(allowed.items()):
                boot_before = 0.0
                if prev is not None and prev.mode != m:
                    boot_before = m_boot
                earliest = (prev.end if prev is not None else 0.0) + boot_before
                start = max(ready, earliest, 0.0)
                finish = start + duration
                if nxt is not None:
                    gap_after = nxt.boot_time if nxt.mode != m else 0.0
                    if time_lt(nxt.start - gap_after, finish):
                        continue
                consider(finish, start, "insert", gap, m)

        assert best is not None, "gap after the last window always fits"
        finish, start, how, index, chosen_mode = best
        if how == "join":
            window = self.windows[index]
            window.start = min(window.start, start)
            window.end = max(window.end, finish)
            return start, finish
        self.windows.insert(
            index + 1,
            ModeWindow(
                mode=chosen_mode,
                start=start,
                end=finish,
                boot_time=allowed[chosen_mode],
            ),
        )
        return start, finish

    def busy_time(self) -> float:
        """Total window time (excludes reboot gaps)."""
        return sum(w.duration for w in self.windows)

    def span(self) -> Tuple[float, float]:
        """(first start, last end), or (0, 0) when empty."""
        if not self.windows:
            return (0.0, 0.0)
        return (self.windows[0].start, self.windows[-1].end)
