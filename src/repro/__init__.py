"""CRUSADE: hardware/software co-synthesis of dynamically
reconfigurable heterogeneous real-time distributed embedded systems.

A from-scratch reproduction of B. P. Dave's DATE 1999 paper.  The
public API:

* build specifications with :class:`Task`, :class:`TaskGraph` and
  :class:`SystemSpec` (or generate synthetic ones with
  :func:`generate_spec`);
* pick a resource library -- :func:`default_library` rebuilds the
  paper's 1997 catalog;
* run :func:`crusade` (or :func:`crusade_ft` for fault tolerance) and
  inspect the returned :class:`CoSynthesisResult`.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.errors import (
    AllocationError,
    DependabilityError,
    ReproError,
    ResourceLibraryError,
    RoutingError,
    SchedulingError,
    SpecificationError,
    SynthesisError,
)
from repro.graph import (
    AssertionSpec,
    Edge,
    GeneratorConfig,
    MemoryRequirement,
    SystemSpec,
    Task,
    TaskGraph,
    generate_graph,
    generate_spec,
    hyperperiod_of,
    validate_spec,
)
from repro.resources import (
    AsicType,
    LinkType,
    MemoryBank,
    PEKind,
    PpeType,
    ProcessorType,
    ResourceLibrary,
    default_library,
)
from repro.delay import DelayPolicy
from repro.core import (
    CoSynthesisResult,
    CrusadeConfig,
    FtConfig,
    crusade,
    crusade_ft,
    render_architecture,
)
from repro.io import (
    load_spec_file,
    save_result_file,
    save_spec_file,
    spec_from_dict,
    spec_to_dict,
    stats_from_result_dict,
)
from repro.obs import (
    JsonlSink,
    MemorySink,
    SynthesisStats,
    Tracer,
    render_stats,
)
from repro.sched.gantt import render_gantt, utilization_summary
from repro.sched.validate import validate_schedule
from repro.arch.validate import validate_architecture
from repro.campaign import (
    CampaignOutcome,
    CampaignSpec,
    RetryPolicy,
    Variant,
    campaign_status,
    run_campaign,
)

__version__ = "1.0.0"

__all__ = [
    "AllocationError",
    "DependabilityError",
    "ReproError",
    "ResourceLibraryError",
    "RoutingError",
    "SchedulingError",
    "SpecificationError",
    "SynthesisError",
    "AssertionSpec",
    "Edge",
    "GeneratorConfig",
    "MemoryRequirement",
    "SystemSpec",
    "Task",
    "TaskGraph",
    "generate_graph",
    "generate_spec",
    "hyperperiod_of",
    "validate_spec",
    "AsicType",
    "LinkType",
    "MemoryBank",
    "PEKind",
    "PpeType",
    "ProcessorType",
    "ResourceLibrary",
    "default_library",
    "DelayPolicy",
    "CoSynthesisResult",
    "CrusadeConfig",
    "FtConfig",
    "crusade",
    "crusade_ft",
    "render_architecture",
    "load_spec_file",
    "save_result_file",
    "save_spec_file",
    "spec_from_dict",
    "spec_to_dict",
    "stats_from_result_dict",
    "Tracer",
    "MemorySink",
    "JsonlSink",
    "SynthesisStats",
    "render_stats",
    "render_gantt",
    "utilization_summary",
    "validate_schedule",
    "validate_architecture",
    "CampaignOutcome",
    "CampaignSpec",
    "RetryPolicy",
    "Variant",
    "campaign_status",
    "run_campaign",
    "__version__",
]
