"""Periodic acyclic task graph (Figure 1 of the paper).

A :class:`TaskGraph` owns a set of :class:`~repro.graph.task.Task`
nodes and :class:`~repro.graph.edge.Edge` arcs, plus the rate
constraints of the paper's execution model: an earliest start time
(EST), a period, and a deadline.  The underlying structure is a
:class:`networkx.DiGraph`, exposed read-only for algorithms that want
graph traversals.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from repro.errors import SpecificationError
from repro.graph.edge import Edge
from repro.graph.task import Task


class TaskGraph:
    """A periodic acyclic task graph with rate constraints.

    Parameters
    ----------
    name:
        Identifier, unique within a :class:`~repro.graph.spec.SystemSpec`.
    period:
        Activation period in seconds; a new copy of the graph arrives
        every ``period`` seconds.
    deadline:
        End-to-end deadline in seconds relative to each copy's earliest
        start time.  Applies to every sink task that does not carry its
        own deadline.  Defaults to the period.
    est:
        Earliest start time of the first copy, in seconds from time 0.
    """

    def __init__(
        self,
        name: str,
        period: float,
        deadline: Optional[float] = None,
        est: float = 0.0,
    ) -> None:
        if not name:
            raise SpecificationError("task graph name must be non-empty")
        if period <= 0:
            raise SpecificationError(
                "task graph %r period must be positive, got %r" % (name, period)
            )
        if deadline is None:
            deadline = period
        if deadline <= 0:
            raise SpecificationError(
                "task graph %r deadline must be positive, got %r" % (name, deadline)
            )
        if est < 0:
            raise SpecificationError(
                "task graph %r EST must be non-negative, got %r" % (name, est)
            )
        self.name = name
        self.period = float(period)
        self.deadline = float(deadline)
        self.est = float(est)
        self._tasks: Dict[str, Task] = {}
        self._edges: Dict[Tuple[str, str], Edge] = {}
        self._nx = nx.DiGraph()
        self._topo_cache: Optional[List[str]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        """Add a task node; returns the task for chaining."""
        if task.name in self._tasks:
            raise SpecificationError(
                "duplicate task %r in graph %r" % (task.name, self.name)
            )
        self._tasks[task.name] = task
        self._nx.add_node(task.name)
        self._topo_cache = None
        return task

    def add_edge(self, src: str, dst: str, bytes_: int = 0) -> Edge:
        """Add a directed communication edge between existing tasks."""
        for endpoint in (src, dst):
            if endpoint not in self._tasks:
                raise SpecificationError(
                    "edge endpoint %r not a task of graph %r" % (endpoint, self.name)
                )
        edge = Edge(src=src, dst=dst, bytes_=bytes_)
        if edge.key in self._edges:
            raise SpecificationError(
                "duplicate edge %s->%s in graph %r" % (src, dst, self.name)
            )
        self._edges[edge.key] = edge
        self._nx.add_edge(src, dst)
        self._topo_cache = None
        return edge

    def replace_task(self, task: Task) -> None:
        """Replace an existing task definition in place, keeping edges.

        Used by the fault-tolerance transformation when annotating
        tasks, never by client code building a specification.
        """
        if task.name not in self._tasks:
            raise SpecificationError(
                "cannot replace unknown task %r in graph %r" % (task.name, self.name)
            )
        self._tasks[task.name] = task

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def tasks(self) -> Dict[str, Task]:
        """Mapping of task name to :class:`Task` (do not mutate)."""
        return self._tasks

    @property
    def edges(self) -> Dict[Tuple[str, str], Edge]:
        """Mapping of (src, dst) to :class:`Edge` (do not mutate)."""
        return self._edges

    @property
    def nx_graph(self) -> nx.DiGraph:
        """The underlying networkx digraph (treat as read-only)."""
        return self._nx

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_name: str) -> bool:
        return task_name in self._tasks

    def task(self, name: str) -> Task:
        """Look up a task by name."""
        try:
            return self._tasks[name]
        except KeyError:
            raise SpecificationError(
                "no task %r in graph %r" % (name, self.name)
            ) from None

    def edge(self, src: str, dst: str) -> Edge:
        """Look up an edge by endpoints."""
        try:
            return self._edges[(src, dst)]
        except KeyError:
            raise SpecificationError(
                "no edge %s->%s in graph %r" % (src, dst, self.name)
            ) from None

    def predecessors(self, task_name: str) -> List[str]:
        """Names of tasks with an edge into ``task_name`` (sorted)."""
        return sorted(self._nx.predecessors(task_name))

    def successors(self, task_name: str) -> List[str]:
        """Names of tasks fed by ``task_name`` (sorted)."""
        return sorted(self._nx.successors(task_name))

    def sources(self) -> List[str]:
        """Tasks with no predecessors, sorted by name."""
        return sorted(n for n in self._nx.nodes if self._nx.in_degree(n) == 0)

    def sinks(self) -> List[str]:
        """Tasks with no successors, sorted by name."""
        return sorted(n for n in self._nx.nodes if self._nx.out_degree(n) == 0)

    def topological_order(self) -> List[str]:
        """Deterministic topological order of task names.

        Ties are broken lexicographically so repeated runs are
        reproducible regardless of insertion order.
        """
        if self._topo_cache is None:
            self._topo_cache = list(
                nx.lexicographical_topological_sort(self._nx)
            )
        return list(self._topo_cache)

    def is_acyclic(self) -> bool:
        """True when the graph has no directed cycles."""
        return nx.is_directed_acyclic_graph(self._nx)

    def effective_deadline(self, task_name: str) -> Optional[float]:
        """Deadline applying to ``task_name``, if any.

        A task's own deadline wins; otherwise sink tasks inherit the
        graph deadline; non-sink tasks without their own deadline have
        none.
        """
        task = self.task(task_name)
        if task.deadline is not None:
            return task.deadline
        if self._nx.out_degree(task_name) == 0:
            return self.deadline
        return None

    def deadline_tasks(self) -> List[str]:
        """Names of tasks carrying an effective deadline, sorted."""
        return sorted(
            name for name in self._tasks if self.effective_deadline(name) is not None
        )

    def iter_tasks(self) -> Iterator[Task]:
        """Iterate tasks in deterministic (topological) order."""
        for name in self.topological_order():
            yield self._tasks[name]

    def iter_edges(self) -> Iterator[Edge]:
        """Iterate edges in deterministic order."""
        for key in sorted(self._edges):
            yield self._edges[key]

    def total_area_gates(self) -> int:
        """Sum of gate areas over all tasks (hardware sizing aid)."""
        return sum(t.area_gates for t in self._tasks.values())

    def subgraph_tasks(self, names: Iterable[str]) -> List[Task]:
        """The tasks named in ``names``, validated to exist."""
        return [self.task(n) for n in names]

    def __repr__(self) -> str:
        return "TaskGraph(%r, %d tasks, %d edges, period=%g)" % (
            self.name,
            len(self._tasks),
            len(self._edges),
            self.period,
        )
