"""Task model: the atomic unit of embedded-system behaviour.

Section 2.2 of the paper characterizes each task by an execution-time
vector (worst-case execution time per PE type), a preference vector, an
exclusion vector, and a memory vector.  For hardware mapping the task
additionally carries a gate-equivalent area and a pin requirement; for
the fault-tolerance extension it carries the set of available assertion
checks and its error-transparency flag (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.errors import SpecificationError


@dataclass(frozen=True)
class MemoryRequirement:
    """Storage needed by a task when mapped to a general-purpose
    processor, split the way the paper's memory vector is: program
    store, data store and stack store, all in bytes.
    """

    program: int = 0
    data: int = 0
    stack: int = 0

    def __post_init__(self) -> None:
        for label in ("program", "data", "stack"):
            if getattr(self, label) < 0:
                raise SpecificationError(
                    "memory requirement %s must be non-negative" % label
                )

    @property
    def total(self) -> int:
        """Total bytes of storage across all three segments."""
        return self.program + self.data + self.stack

    def __add__(self, other: "MemoryRequirement") -> "MemoryRequirement":
        return MemoryRequirement(
            program=self.program + other.program,
            data=self.data + other.data,
            stack=self.stack + other.stack,
        )


@dataclass(frozen=True)
class AssertionSpec:
    """One assertion check available for a task (Section 6).

    An assertion task checks an inherent property of the checked task's
    output (parity, address range, checksum, ...).  ``coverage`` is the
    fraction of faults in the checked task that the assertion detects.
    ``exec_times`` is the check task's execution vector and
    ``comm_bytes`` the weight of the edge from the checked task to the
    check task, both specified a priori per the paper.
    """

    name: str
    coverage: float
    exec_times: Mapping[str, float] = field(default_factory=dict)
    comm_bytes: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.coverage <= 1.0:
            raise SpecificationError(
                "assertion %r coverage must be in (0, 1], got %r"
                % (self.name, self.coverage)
            )
        if self.comm_bytes < 0:
            raise SpecificationError(
                "assertion %r comm_bytes must be non-negative" % (self.name,)
            )


@dataclass(frozen=True)
class Task:
    """A task node of a periodic task graph.

    Parameters
    ----------
    name:
        Identifier, unique within its task graph.
    exec_times:
        The execution-time vector: worst-case execution time in seconds
        on each PE *type* (by PE-type name).  A PE type absent from the
        mapping, or mapped to ``None``, cannot execute the task.
    preference:
        The preference vector: PE-type name to a weight in [0, 1].
        Higher is preferred; a weight of 0 forbids the mapping even if
        an execution time exists (the paper uses this for PEs lacking a
        special resource).  PE types not listed default to weight 1.
    exclusions:
        The exclusion vector: names of tasks that must not share a PE
        with this task (processing-bottleneck pairs).
    memory:
        Storage needed when mapped to a general-purpose processor.
    area_gates:
        Gate-equivalent area consumed when mapped to an ASIC, FPGA or
        CPLD.
    pins:
        Device pins consumed when mapped to hardware.
    deadline:
        Optional deadline in seconds relative to the task graph's
        earliest start time.  Usually only sink tasks carry deadlines;
        the graph-level deadline applies to sinks without one.
    assertions:
        Assertion checks available for fault detection (Section 6).  An
        empty tuple means no assertion exists and CRUSADE-FT falls back
        to duplicate-and-compare.
    error_transparent:
        True when the task transmits any error at its inputs to its
        outputs, allowing checks to be shared downstream.
    """

    name: str
    exec_times: Mapping[str, Optional[float]]
    preference: Mapping[str, float] = field(default_factory=dict)
    exclusions: frozenset = frozenset()
    memory: MemoryRequirement = MemoryRequirement()
    area_gates: int = 0
    pins: int = 0
    deadline: Optional[float] = None
    assertions: Tuple[AssertionSpec, ...] = ()
    error_transparent: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("task name must be non-empty")
        if not self.exec_times:
            raise SpecificationError(
                "task %r has an empty execution-time vector" % (self.name,)
            )
        for pe_type, wcet in self.exec_times.items():
            if wcet is not None and wcet <= 0:
                raise SpecificationError(
                    "task %r has non-positive WCET %r on PE type %r"
                    % (self.name, wcet, pe_type)
                )
        for pe_type, weight in self.preference.items():
            if not 0.0 <= weight <= 1.0:
                raise SpecificationError(
                    "task %r preference for %r must be in [0, 1], got %r"
                    % (self.name, pe_type, weight)
                )
        if self.area_gates < 0:
            raise SpecificationError(
                "task %r area_gates must be non-negative" % (self.name,)
            )
        if self.pins < 0:
            raise SpecificationError("task %r pins must be non-negative" % (self.name,))
        if self.deadline is not None and self.deadline <= 0:
            raise SpecificationError(
                "task %r deadline must be positive, got %r" % (self.name, self.deadline)
            )
        if self.name in self.exclusions:
            raise SpecificationError("task %r excludes itself" % (self.name,))

    def can_run_on(self, pe_type: str) -> bool:
        """True when the task has a WCET on ``pe_type`` and its
        preference vector does not forbid the mapping.
        """
        wcet = self.exec_times.get(pe_type)
        if wcet is None:
            return False
        return self.preference.get(pe_type, 1.0) > 0.0

    def wcet_on(self, pe_type: str) -> float:
        """Worst-case execution time on ``pe_type``.

        Raises :class:`SpecificationError` when the task cannot run
        there; callers should gate on :meth:`can_run_on`.
        """
        wcet = self.exec_times.get(pe_type)
        if wcet is None or not self.can_run_on(pe_type):
            raise SpecificationError(
                "task %r cannot execute on PE type %r" % (self.name, pe_type)
            )
        return wcet

    @property
    def max_exec_time(self) -> float:
        """Largest WCET across all allowed PE types.

        Used for pessimistic priority levels before allocation is
        known (Section 5: "sum up the maximum execution and
        communication times along the longest path").
        """
        allowed = [
            wcet
            for pe_type, wcet in self.exec_times.items()
            if wcet is not None and self.can_run_on(pe_type)
        ]
        if not allowed:
            raise SpecificationError(
                "task %r cannot execute on any PE type" % (self.name,)
            )
        return max(allowed)

    @property
    def min_exec_time(self) -> float:
        """Smallest WCET across all allowed PE types."""
        allowed = [
            wcet
            for pe_type, wcet in self.exec_times.items()
            if wcet is not None and self.can_run_on(pe_type)
        ]
        if not allowed:
            raise SpecificationError(
                "task %r cannot execute on any PE type" % (self.name,)
            )
        return min(allowed)

    def allowed_pe_types(self) -> Tuple[str, ...]:
        """PE-type names this task may be mapped to, sorted by
        decreasing preference weight then name for determinism.
        """
        names = [t for t in self.exec_times if self.can_run_on(t)]
        names.sort(key=lambda t: (-self.preference.get(t, 1.0), t))
        return tuple(names)

    @property
    def hardware_only(self) -> bool:
        """True when every allowed mapping is a hardware one.

        Detected structurally: the task consumes gates but no memory,
        which is how the synthetic workloads mark DSP-style blocks.
        """
        return self.area_gates > 0 and self.memory.total == 0
