"""Association array: copy bookkeeping without full replication.

In traditional real-time computing every task graph is replicated
``hyperperiod / period`` times and each copy scheduled independently,
which the paper notes is impractical for multi-rate systems where the
ratio is large (Section 5).  COSYN's *association array* instead keeps
one entry per copy recording only its phase offset; the schedule of a
representative copy is reused for the others, with deadline checks
performed per copy by shifting start/finish times.

Our implementation follows that spirit: an :class:`AssociationArray`
enumerates :class:`CopyInstance` records (graph, copy index, arrival
offset, absolute deadline).  The scheduler materializes at most
``max_explicit_copies`` copies per graph; the remaining copies are
*associated* with the scheduled ones -- their timing is the scheduled
copy's shifted by a whole number of periods, which is exact whenever
the resources serving the graph are not shared across copies and is
the standard COSYN approximation otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import SpecificationError
from repro.graph.hyperperiod import copies_in_hyperperiod, hyperperiod_of
from repro.graph.spec import SystemSpec


@dataclass(frozen=True)
class CopyInstance:
    """One copy of a task graph inside the hyperperiod.

    Attributes
    ----------
    graph:
        Task-graph name.
    copy:
        Copy index, 0-based, within the hyperperiod.
    arrival:
        Absolute arrival time of this copy in seconds (graph EST plus
        ``copy`` periods).
    deadline:
        Absolute deadline of this copy in seconds.
    explicit:
        True when this copy is materialized for the scheduler; False
        when it is associated with copy ``copy %% n_explicit`` and its
        timing derived by period shifting.
    """

    graph: str
    copy: int
    arrival: float
    deadline: float
    explicit: bool

    @property
    def key(self) -> tuple:
        return (self.graph, self.copy)


class AssociationArray:
    """Per-graph copy enumeration over one hyperperiod.

    Parameters
    ----------
    spec:
        The system specification.
    max_explicit_copies:
        Cap on the number of copies per graph handed to the scheduler.
        ``None`` materializes every copy (exact, potentially slow).
    """

    def __init__(
        self, spec: SystemSpec, max_explicit_copies: Optional[int] = 4
    ) -> None:
        if max_explicit_copies is not None and max_explicit_copies < 1:
            raise SpecificationError(
                "max_explicit_copies must be at least 1, got %r"
                % (max_explicit_copies,)
            )
        self.spec = spec
        self.hyperperiod = hyperperiod_of(spec)
        self.max_explicit_copies = max_explicit_copies
        self._copies: Dict[str, List[CopyInstance]] = {}
        for name in spec.graph_names():
            graph = spec.graph(name)
            total = copies_in_hyperperiod(graph.period, self.hyperperiod)
            explicit = total
            if max_explicit_copies is not None:
                explicit = min(total, max_explicit_copies)
            entries = []
            for k in range(total):
                arrival = graph.est + k * graph.period
                entries.append(
                    CopyInstance(
                        graph=name,
                        copy=k,
                        arrival=arrival,
                        deadline=arrival + graph.deadline,
                        explicit=k < explicit,
                    )
                )
            self._copies[name] = entries

    # ------------------------------------------------------------------
    def copies(self, graph_name: str) -> List[CopyInstance]:
        """All copies of ``graph_name`` inside the hyperperiod."""
        try:
            return list(self._copies[graph_name])
        except KeyError:
            raise SpecificationError(
                "no task graph %r in association array" % (graph_name,)
            ) from None

    def explicit_copies(self, graph_name: str) -> List[CopyInstance]:
        """Copies materialized for the scheduler."""
        return [c for c in self.copies(graph_name) if c.explicit]

    def associated_copies(self, graph_name: str) -> List[CopyInstance]:
        """Copies whose timing is derived by period shifting."""
        return [c for c in self.copies(graph_name) if not c.explicit]

    def n_copies(self, graph_name: str) -> int:
        """Total copies of a graph in the hyperperiod."""
        return len(self.copies(graph_name))

    def n_explicit(self, graph_name: str) -> int:
        """Materialized copies of a graph."""
        return len(self.explicit_copies(graph_name))

    def representative_of(self, instance: CopyInstance) -> CopyInstance:
        """The explicit copy an associated copy derives its schedule
        from (itself, when already explicit)."""
        if instance.explicit:
            return instance
        n_explicit = self.n_explicit(instance.graph)
        rep_index = instance.copy % n_explicit
        return self._copies[instance.graph][rep_index]

    def shift_of(self, instance: CopyInstance) -> float:
        """Time shift applied to the representative copy's schedule to
        obtain this copy's timing (zero for explicit copies)."""
        rep = self.representative_of(instance)
        return instance.arrival - rep.arrival

    def iter_all(self) -> Iterator[CopyInstance]:
        """Iterate every copy of every graph, deterministic order."""
        for name in self.spec.graph_names():
            for instance in self._copies[name]:
                yield instance

    def iter_explicit(self) -> Iterator[CopyInstance]:
        """Iterate only the materialized copies."""
        for instance in self.iter_all():
            if instance.explicit:
                yield instance

    def total_explicit(self) -> int:
        """Total number of materialized copies across all graphs."""
        return sum(self.n_explicit(n) for n in self.spec.graph_names())

    def total_copies(self) -> int:
        """Total copies (explicit + associated) across all graphs."""
        return sum(self.n_copies(n) for n in self.spec.graph_names())

    def compression_ratio(self) -> float:
        """Copies avoided by association: total / explicit.

        A ratio of 1.0 means no compression (every copy materialized);
        larger values quantify the association array's saving.
        """
        explicit = self.total_explicit()
        if explicit == 0:
            return 1.0
        return self.total_copies() / explicit

    def __repr__(self) -> str:
        return "AssociationArray(hyperperiod=%g, %d/%d copies explicit)" % (
            self.hyperperiod,
            self.total_explicit(),
            self.total_copies(),
        )
