"""Edge model: communication between tasks.

Each edge of a task graph is characterized by the number of information
bytes to transfer; its *communication vector* -- time on every link
type -- is derived from link characteristics (Section 2.2).  The vector
is computed with an assumed average port count before allocation and
recomputed with actual port counts after each allocation, so it lives
on the link type (see :mod:`repro.resources.link`) rather than being
stored here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpecificationError


@dataclass(frozen=True)
class Edge:
    """A directed communication edge between two tasks of one graph.

    Parameters
    ----------
    src, dst:
        Task names within the owning graph.
    bytes_:
        Number of information bytes transferred per activation.
    """

    src: str
    dst: str
    bytes_: int = 0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise SpecificationError(
                "self-loop edge on task %r (task graphs are acyclic)" % (self.src,)
            )
        if self.bytes_ < 0:
            raise SpecificationError(
                "edge %s->%s byte count must be non-negative" % (self.src, self.dst)
            )

    @property
    def key(self) -> tuple:
        """(src, dst) pair identifying the edge within its graph."""
        return (self.src, self.dst)
