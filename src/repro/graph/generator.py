"""Deterministic synthetic task-graph generator.

The paper evaluates on proprietary Bell Labs telecom task graphs
(base-station, video-router, SONET/ATM systems).  This module generates
structurally similar workloads: layered acyclic DAGs whose tasks mix
software-only control/OAM work, hardware-only DSP/cell-processing
blocks, and mixed-mapping tasks; periods drawn from a harmonic set so
hyperperiods stay bounded; and *compatibility groups* -- sets of task
graphs whose execution windows never overlap, declared compatible a
priori exactly as Section 4.1 says real task-graph generation does.

Everything is driven by a seeded :class:`random.Random`, so the same
:class:`GeneratorConfig` always produces the same specification.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SpecificationError
from repro.graph.spec import SystemSpec
from repro.graph.task import AssertionSpec, MemoryRequirement, Task
from repro.graph.taskgraph import TaskGraph
from repro.resources.catalog import default_library
from repro.resources.library import ResourceLibrary
from repro.resources.pe import ProcessorType
from repro.units import KB, MS, US


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the synthetic workload generator.

    Attributes
    ----------
    seed:
        Master seed; every derived random choice flows from it.
    n_graphs:
        Number of periodic task graphs in the system.
    tasks_per_graph:
        Mean tasks per graph; actual counts vary +-30 %.  The last
        graph absorbs rounding so the total matches ``total_tasks``
        when that is set.
    total_tasks:
        Optional exact total task count across all graphs (used to hit
        the paper's example sizes); overrides per-graph rounding.
    periods:
        Harmonic period choices in seconds.  Defaults span 25 us to
        60 s like the paper's workloads, downsampled to a harmonic
        subset to keep hyperperiods tractable.
    deadline_slack:
        Graph deadline = ``deadline_slack`` x period.
    avg_parallelism:
        Mean layer width of the layered DAG.
    hw_only_fraction / mixed_fraction:
        Fractions of tasks mappable only to hardware (DSP-style) and to
        both hardware and software; the remainder is software-only.
    asic_eligible_fraction:
        Fraction of hardware-capable tasks that may also map to ASICs.
        Telecom functions overwhelmingly demand field reprogrammability
        (the paper's Section 3 motivations: post-release bug fixes and
        feature upgrades), so most hardware tasks are FPGA/CPLD-only.
    hw_speedup:
        Hardware execution is ``hw_speedup`` x faster than the baseline
        processor.
    utilization:
        Target fraction of the deadline consumed by the critical path
        on a mid-speed processor; controls schedule tightness.
    compat_group_size:
        Task graphs are partitioned into groups of this size; graphs
        within a group get non-overlapping execution windows and are
        declared mutually compatible.  1 disables compatibility (every
        pair overlaps), which removes all reconfiguration opportunity.
    exclusion_prob:
        Probability a task excludes a same-layer sibling.
    assertion_prob / assertion_coverage:
        FT parameters: probability a task has an assertion available
        and that assertion's fault coverage.
    error_transparent_prob:
        Probability a task is error-transparent (Section 6).
    """

    seed: int = 0
    n_graphs: int = 4
    tasks_per_graph: int = 20
    total_tasks: Optional[int] = None
    periods: Tuple[float, ...] = (
        400 * US,
        800 * US,
        1600 * US,
        3200 * US,
        12800 * US,
        51200 * US,
    )
    compat_periods: Tuple[float, ...] = (0.8192, 1.6384, 3.2768, 6.5536)
    deadline_slack: float = 1.0
    avg_parallelism: float = 3.0
    hw_only_fraction: float = 0.25
    mixed_fraction: float = 0.25
    asic_eligible_fraction: float = 0.3
    hw_speedup: float = 12.0
    utilization: float = 0.45
    compat_group_size: int = 3
    exclusion_prob: float = 0.02
    assertion_prob: float = 0.7
    assertion_coverage: float = 0.95
    error_transparent_prob: float = 0.4

    def __post_init__(self) -> None:
        if self.n_graphs < 1:
            raise SpecificationError("n_graphs must be at least 1")
        if self.tasks_per_graph < 1:
            raise SpecificationError("tasks_per_graph must be at least 1")
        if self.total_tasks is not None and self.total_tasks < self.n_graphs:
            raise SpecificationError("total_tasks must be >= n_graphs")
        if not self.periods or not self.compat_periods:
            raise SpecificationError("period sets must be non-empty")
        if not 0 < self.deadline_slack <= 4.0:
            raise SpecificationError("deadline_slack must be in (0, 4]")
        if self.hw_only_fraction + self.mixed_fraction > 1.0:
            raise SpecificationError("hardware fractions exceed 1.0")
        if self.compat_group_size < 1:
            raise SpecificationError("compat_group_size must be at least 1")
        if not 0 < self.utilization <= 1.0:
            raise SpecificationError("utilization must be in (0, 1]")


def _graph_sizes(config: GeneratorConfig, rng: random.Random) -> List[int]:
    """Per-graph task counts, matching total_tasks exactly if set."""
    sizes = []
    for _ in range(config.n_graphs):
        jitter = rng.uniform(0.7, 1.3)
        sizes.append(max(1, int(round(config.tasks_per_graph * jitter))))
    if config.total_tasks is not None:
        scale = config.total_tasks / max(1, sum(sizes))
        sizes = [max(1, int(round(s * scale))) for s in sizes]
        # Repair rounding drift one task at a time, deterministically.
        index = 0
        while sum(sizes) < config.total_tasks:
            sizes[index % len(sizes)] += 1
            index += 1
        index = 0
        while sum(sizes) > config.total_tasks:
            if sizes[index % len(sizes)] > 1:
                sizes[index % len(sizes)] -= 1
            index += 1
    return sizes


def _layering(n_tasks: int, config: GeneratorConfig, rng: random.Random) -> List[int]:
    """Assign each of ``n_tasks`` to a layer; returns layer sizes."""
    layers: List[int] = []
    remaining = n_tasks
    while remaining > 0:
        width = max(1, int(round(rng.gauss(config.avg_parallelism, 1.0))))
        width = min(width, remaining)
        layers.append(width)
        remaining -= width
    return layers


def _software_pe_names(library: ResourceLibrary) -> List[str]:
    return [p.name for p in library.processors()]


def _ppe_names(library: ResourceLibrary) -> List[str]:
    return [p.name for p in library.ppes()]


def _asic_names(library: ResourceLibrary) -> List[str]:
    return [a.name for a in library.asics()]


def _baseline_speed(library: ResourceLibrary) -> float:
    """Median processor speed, used to calibrate utilization."""
    speeds = sorted(
        p.speed for p in library.processors() if isinstance(p, ProcessorType)
    )
    if not speeds:
        raise SpecificationError("library has no processors to calibrate against")
    return speeds[len(speeds) // 2]


def generate_graph(
    name: str,
    n_tasks: int,
    period: float,
    config: GeneratorConfig,
    rng: random.Random,
    library: Optional[ResourceLibrary] = None,
    est: float = 0.0,
    window_fraction: float = 1.0,
) -> TaskGraph:
    """Generate one layered periodic task graph.

    Parameters
    ----------
    window_fraction:
        Fraction of the period the graph's deadline occupies; used to
        confine compatibility-group members to disjoint windows.
    """
    if library is None:
        library = default_library()
    deadline = period * config.deadline_slack * window_fraction
    graph = TaskGraph(name=name, period=period, deadline=deadline, est=est)
    layer_sizes = _layering(n_tasks, config, rng)
    depth = len(layer_sizes)
    sw_names = _software_pe_names(library)
    ppe_names = _ppe_names(library)
    asic_names = _asic_names(library)
    base_speed = _baseline_speed(library)
    # Budget the critical path: `depth` tasks back-to-back should use
    # `utilization` of the deadline on a median processor.
    unit = (deadline * config.utilization) / max(1, depth)

    # Edge payloads scale with the rate: a 25 us control loop moves a
    # few words per activation while a provisioning function ships
    # kilobytes.  Without this, fast graphs could never meet deadlines
    # on any library link.
    bytes_cap = int(min(2048, max(32, period / MS * 64)))

    layers: List[List[str]] = []
    task_index = 0
    for layer_id, width in enumerate(layer_sizes):
        layer: List[str] = []
        for _ in range(width):
            task_name = "%s.t%03d" % (name, task_index)
            task_index += 1
            roll = rng.random()
            if roll < config.hw_only_fraction:
                kind = "hw"
            elif roll < config.hw_only_fraction + config.mixed_fraction:
                kind = "mixed"
            else:
                kind = "sw"
            base_time = unit * rng.uniform(0.3, 1.0)
            exec_times: Dict[str, Optional[float]] = {}
            memory = MemoryRequirement()
            area = 0
            pins = 0
            if kind in ("sw", "mixed"):
                for processor in library.processors():
                    exec_times[processor.name] = (
                        base_time * base_speed / processor.speed
                    )
                memory = MemoryRequirement(
                    program=rng.randint(2, 48) * KB,
                    data=rng.randint(1, 32) * KB,
                    stack=rng.randint(1, 4) * KB,
                )
            if kind in ("hw", "mixed"):
                hw_time = base_time / config.hw_speedup
                hw_names = list(ppe_names)
                if rng.random() < config.asic_eligible_fraction:
                    hw_names.extend(asic_names)
                for hw in hw_names:
                    exec_times[hw] = hw_time
                area = rng.randint(120, 2400)
                pins = rng.randint(4, 24)
                if kind == "hw":
                    memory = MemoryRequirement()
            exclusions = frozenset(
                sibling
                for sibling in layer
                if rng.random() < config.exclusion_prob
            )
            assertions: Tuple[AssertionSpec, ...] = ()
            if rng.random() < config.assertion_prob:
                check_times = {
                    pe: t * 0.15
                    for pe, t in exec_times.items()
                    if t is not None
                }
                assertions = (
                    AssertionSpec(
                        name=task_name + ".chk",
                        coverage=config.assertion_coverage,
                        exec_times=check_times,
                        comm_bytes=rng.choice((16, 32, 64)),
                    ),
                )
            task = Task(
                name=task_name,
                exec_times=exec_times,
                exclusions=exclusions,
                memory=memory,
                area_gates=area,
                pins=pins,
                assertions=assertions,
                error_transparent=rng.random() < config.error_transparent_prob,
            )
            graph.add_task(task)
            layer.append(task_name)
        layers.append(layer)
        if layer_id > 0:
            previous = layers[layer_id - 1]
            # Every node gets at least one parent; parents fan out.
            for task_name in layer:
                parent = rng.choice(previous)
                graph.add_edge(parent, task_name, bytes_=rng.randint(16, bytes_cap))
            # A few extra cross edges, including skip-layer ones.
            extra = max(0, int(round(len(layer) * 0.4)))
            for _ in range(extra):
                src_layer = layers[rng.randint(0, layer_id - 1)]
                src = rng.choice(src_layer)
                dst = rng.choice(layer)
                if (src, dst) not in graph.edges:
                    graph.add_edge(src, dst, bytes_=rng.randint(16, bytes_cap))
    return graph


def generate_spec(
    config: GeneratorConfig,
    library: Optional[ResourceLibrary] = None,
    name: str = "synthetic",
) -> SystemSpec:
    """Generate a full system specification.

    Task graphs are partitioned into compatibility groups of
    ``config.compat_group_size``; members of a group receive disjoint
    execution windows within their common period (staggered ESTs and
    shortened deadlines) and the group's pairs are declared compatible,
    mirroring how the paper's task-graph generation relays
    compatibility vectors to the co-synthesis system.
    """
    if library is None:
        library = default_library()
    rng = random.Random(config.seed)
    sizes = _graph_sizes(config, rng)
    graphs: List[TaskGraph] = []
    compat_pairs: List[Tuple[str, str]] = []
    unavailability: Dict[str, float] = {}

    group_size = config.compat_group_size
    graph_id = 0
    for group_start in range(0, config.n_graphs, group_size):
        members = list(range(group_start, min(group_start + group_size, config.n_graphs)))
        # Compatibility groups share a programmable device through
        # reconfiguration, so their windows must dwarf device boot
        # times (hundreds of ms): they draw from the slow period set.
        if len(members) > 1:
            period = rng.choice(config.compat_periods)
        else:
            period = rng.choice(config.periods)
        window = 1.0 / len(members)
        member_names = []
        for slot, index in enumerate(members):
            graph_name = "%s.g%02d" % (name, graph_id)
            graph_id += 1
            est = slot * window * period
            graph = generate_graph(
                name=graph_name,
                n_tasks=sizes[index],
                period=period,
                config=config,
                rng=rng,
                library=library,
                est=est,
                window_fraction=window if len(members) > 1 else 1.0,
            )
            graphs.append(graph)
            member_names.append(graph_name)
            # Telecom-style availability classes (minutes/year).
            unavailability[graph_name] = rng.choice((4.0, 12.0, 30.0))
        for i, a in enumerate(member_names):
            for b in member_names[i + 1 :]:
                compat_pairs.append((a, b))

    return SystemSpec(
        name=name,
        graphs=graphs,
        compatibility=compat_pairs if group_size > 1 else [],
        boot_time_requirement=0.25,
        unavailability=unavailability,
    )
