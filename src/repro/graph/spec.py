"""System specification: the complete co-synthesis input.

A :class:`SystemSpec` bundles the periodic task graphs with the
system-wide constraints the paper requires a priori: the boot-time
requirement for reconfigurable devices (Section 4.4), the optional
compatibility vectors between task graphs (Section 4.1), and the
availability requirements per task graph for CRUSADE-FT (Section 6).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.errors import SpecificationError
from repro.graph.taskgraph import TaskGraph


class SystemSpec:
    """The embedded-system specification fed to CRUSADE.

    Parameters
    ----------
    name:
        Human-readable system name (appears in reports).
    graphs:
        The periodic task graphs specifying system functionality.
    compatibility:
        Optional explicit compatibility relation: a set of unordered
        task-graph name pairs that are *compatible* (their execution
        windows never overlap, so they may time-share a reconfigurable
        device).  ``None`` asks the co-synthesis system to detect
        compatibility automatically from the schedule, per Figure 3.
    boot_time_requirement:
        Maximum acceptable reconfiguration (boot) time in seconds for
        any programmable device, specified a priori per Section 4.4.
    unavailability:
        CRUSADE-FT only: mapping of task-graph name to the maximum
        tolerated downtime in minutes per year.
    """

    def __init__(
        self,
        name: str,
        graphs: Iterable[TaskGraph],
        compatibility: Optional[Iterable[Tuple[str, str]]] = None,
        boot_time_requirement: float = 0.2,
        unavailability: Optional[Mapping[str, float]] = None,
    ) -> None:
        if not name:
            raise SpecificationError("system name must be non-empty")
        self.name = name
        self._graphs: Dict[str, TaskGraph] = {}
        for graph in graphs:
            if graph.name in self._graphs:
                raise SpecificationError(
                    "duplicate task graph %r in system %r" % (graph.name, name)
                )
            self._graphs[graph.name] = graph
        if not self._graphs:
            raise SpecificationError("system %r has no task graphs" % (name,))
        if boot_time_requirement <= 0:
            raise SpecificationError(
                "boot-time requirement must be positive, got %r"
                % (boot_time_requirement,)
            )
        self.boot_time_requirement = float(boot_time_requirement)
        self._compat: Optional[FrozenSet[FrozenSet[str]]] = None
        if compatibility is not None:
            pairs = set()
            for a, b in compatibility:
                for g in (a, b):
                    if g not in self._graphs:
                        raise SpecificationError(
                            "compatibility names unknown graph %r" % (g,)
                        )
                if a == b:
                    raise SpecificationError(
                        "graph %r declared compatible with itself" % (a,)
                    )
                pairs.add(frozenset((a, b)))
            self._compat = frozenset(pairs)
        self.unavailability: Dict[str, float] = {}
        if unavailability:
            for graph_name, minutes in unavailability.items():
                if graph_name not in self._graphs:
                    raise SpecificationError(
                        "unavailability names unknown graph %r" % (graph_name,)
                    )
                if minutes < 0:
                    raise SpecificationError(
                        "unavailability for %r must be non-negative" % (graph_name,)
                    )
                self.unavailability[graph_name] = float(minutes)

    # ------------------------------------------------------------------
    @property
    def graphs(self) -> Dict[str, TaskGraph]:
        """Mapping of graph name to :class:`TaskGraph` (do not mutate)."""
        return self._graphs

    def graph(self, name: str) -> TaskGraph:
        """Look up a task graph by name."""
        try:
            return self._graphs[name]
        except KeyError:
            raise SpecificationError(
                "no task graph %r in system %r" % (name, self.name)
            ) from None

    def graph_names(self) -> List[str]:
        """Sorted task-graph names."""
        return sorted(self._graphs)

    @property
    def total_tasks(self) -> int:
        """Total number of tasks across all graphs."""
        return sum(len(g) for g in self._graphs.values())

    @property
    def has_explicit_compatibility(self) -> bool:
        """True when compatibility vectors were specified a priori."""
        return self._compat is not None

    def compatible(self, a: str, b: str) -> Optional[bool]:
        """Explicit compatibility of graphs ``a`` and ``b``.

        Returns ``True``/``False`` when compatibility vectors were
        specified, or ``None`` when they were not and the co-synthesis
        system must detect non-overlap automatically (Section 4.1).
        """
        for g in (a, b):
            if g not in self._graphs:
                raise SpecificationError("unknown graph %r" % (g,))
        if self._compat is None:
            return None
        if a == b:
            return False
        return frozenset((a, b)) in self._compat

    def compatibility_vector(self, name: str) -> Dict[str, int]:
        """The paper's compatibility vector for graph ``name``.

        Returns a mapping of other-graph name to 0 (compatible) or 1
        (incompatible), matching the paper's Delta encoding.  Only
        valid when explicit compatibility was specified.
        """
        if self._compat is None:
            raise SpecificationError(
                "system %r has no explicit compatibility vectors" % (self.name,)
            )
        return {
            other: 0 if self.compatible(name, other) else 1
            for other in self.graph_names()
            if other != name
        }

    def periods(self) -> List[float]:
        """Periods of all graphs, in graph-name order."""
        return [self._graphs[n].period for n in self.graph_names()]

    def __repr__(self) -> str:
        return "SystemSpec(%r, %d graphs, %d tasks)" % (
            self.name,
            len(self._graphs),
            self.total_tasks,
        )
