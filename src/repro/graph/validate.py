"""Specification validation.

Validation is separated from construction so that programmatic graph
builders (the generator, the FT transformation) can assemble partial
structures cheaply and validate once.  :func:`validate_spec` is called
by the CRUSADE driver before pre-processing.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SpecificationError
from repro.graph.spec import SystemSpec
from repro.graph.taskgraph import TaskGraph
from repro.resources.library import ResourceLibrary


def validate_graph(
    graph: TaskGraph, library: Optional[ResourceLibrary] = None
) -> List[str]:
    """Validate one task graph; returns a list of warnings.

    Raises :class:`SpecificationError` on hard errors: cyclic graphs,
    empty graphs, deadlines exceeding hyperperiod sanity, exclusion
    vectors naming unknown tasks, or (when a library is given) tasks
    whose execution vector names no PE type present in the library.
    Warnings cover suspicious-but-legal conditions such as deadlines
    longer than the period.
    """
    warnings: List[str] = []
    if len(graph) == 0:
        raise SpecificationError("task graph %r has no tasks" % (graph.name,))
    if not graph.is_acyclic():
        raise SpecificationError(
            "task graph %r contains a cycle; task graphs must be acyclic"
            % (graph.name,)
        )
    if graph.deadline > graph.period:
        warnings.append(
            "graph %r deadline %g exceeds period %g; copies may overlap"
            % (graph.name, graph.deadline, graph.period)
        )
    for task in graph.tasks.values():
        for excluded in task.exclusions:
            if excluded not in graph:
                # Exclusions may also reference tasks of other graphs;
                # those are resolved at the system level, so only warn.
                warnings.append(
                    "task %r excludes %r which is not in graph %r"
                    % (task.name, excluded, graph.name)
                )
        if task.deadline is not None and task.deadline > graph.deadline:
            warnings.append(
                "task %r deadline %g exceeds graph deadline %g"
                % (task.name, task.deadline, graph.deadline)
            )
        if library is not None:
            known = [t for t in task.exec_times if library.has_pe_type(t)]
            if not known:
                raise SpecificationError(
                    "task %r names no PE type present in the resource library"
                    % (task.name,)
                )
            runnable = [t for t in known if task.can_run_on(t)]
            if not runnable:
                raise SpecificationError(
                    "task %r cannot run on any library PE type "
                    "(all mappings forbidden)" % (task.name,)
                )
    return warnings


def validate_spec(
    spec: SystemSpec, library: Optional[ResourceLibrary] = None
) -> List[str]:
    """Validate a full system specification; returns all warnings.

    Hard errors raise :class:`SpecificationError`.
    """
    warnings: List[str] = []
    for name in spec.graph_names():
        warnings.extend(validate_graph(spec.graph(name), library))
    # Cross-graph exclusion references must name a task that exists
    # somewhere in the system.
    all_task_names = set()
    for name in spec.graph_names():
        all_task_names.update(spec.graph(name).tasks)
    for name in spec.graph_names():
        for task in spec.graph(name).tasks.values():
            for excluded in task.exclusions:
                if excluded not in all_task_names:
                    raise SpecificationError(
                        "task %r excludes unknown task %r" % (task.name, excluded)
                    )
    return warnings
