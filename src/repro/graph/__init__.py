"""Task-graph model: periodic acyclic task graphs with rate constraints.

This package implements the execution model of Section 2.2 of the
paper: tasks carry execution-time, preference, exclusion and memory
vectors; edges carry byte counts from which per-link communication
vectors are derived; each periodic task graph has an earliest start
time, a period and deadlines.  It also provides hyperperiod/association
-array bookkeeping (Section 5) and a deterministic synthetic workload
generator used to stand in for the paper's proprietary telecom graphs.
"""

from repro.graph.task import AssertionSpec, MemoryRequirement, Task
from repro.graph.edge import Edge
from repro.graph.taskgraph import TaskGraph
from repro.graph.spec import SystemSpec
from repro.graph.hyperperiod import hyperperiod_of
from repro.graph.association import AssociationArray, CopyInstance
from repro.graph.generator import GeneratorConfig, generate_graph, generate_spec
from repro.graph.validate import validate_graph, validate_spec

__all__ = [
    "AssertionSpec",
    "MemoryRequirement",
    "Task",
    "Edge",
    "TaskGraph",
    "SystemSpec",
    "hyperperiod_of",
    "AssociationArray",
    "CopyInstance",
    "GeneratorConfig",
    "generate_graph",
    "generate_spec",
    "validate_graph",
    "validate_spec",
]
