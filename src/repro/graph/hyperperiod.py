"""Hyperperiod computation.

The hyperperiod Gamma is the least common multiple of all task-graph
periods (Section 3).  Periods are floats in seconds; to keep the LCM
well defined we quantize them onto a microsecond tick grid first (the
paper's smallest period is 25 microseconds).  Quantization error is
bounded by half a tick and is far below scheduling granularity.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import SpecificationError
from repro.graph.spec import SystemSpec
from repro.units import US, lcm_of, quantize


def hyperperiod_of(spec_or_periods, tick: float = US) -> float:
    """Hyperperiod in seconds of a :class:`SystemSpec` or an iterable
    of periods.

    Parameters
    ----------
    spec_or_periods:
        Either a :class:`~repro.graph.spec.SystemSpec` or any iterable
        of positive periods in seconds.
    tick:
        Quantization grid in seconds (default one microsecond).
    """
    if isinstance(spec_or_periods, SystemSpec):
        periods: Iterable[float] = spec_or_periods.periods()
    else:
        periods = list(spec_or_periods)
    ticks = [quantize(p, tick) for p in periods]
    if not ticks:
        raise SpecificationError("hyperperiod of an empty period set is undefined")
    return lcm_of(ticks) * tick


def copies_in_hyperperiod(period: float, hyperperiod: float, tick: float = US) -> int:
    """Number of copies of a graph with ``period`` inside ``hyperperiod``.

    Both quantities are quantized onto the same grid so the division is
    exact; the traditional real-time computing rule gives
    ``hyperperiod / period`` copies (Section 3).
    """
    p = quantize(period, tick)
    h = quantize(hyperperiod, tick)
    if h % p != 0:
        raise SpecificationError(
            "hyperperiod %g is not an integer multiple of period %g"
            % (hyperperiod, period)
        )
    return h // p
