"""The vectorized floor kernel is a transparent accelerator.

``deadline_floor_stats`` routes large graphs through a numpy kernel
whose stats must be *bit-identical* to the pure-python DP -- identical
operand-for-operand float arithmetic, not merely close.  These tests
pin that parity on real generated workloads, prove the
``REPRO_NO_NUMPY`` kill switch restores the python path end to end,
and exercise the guarded import surfaced through
:mod:`repro.perf.prune` for the no-numpy CI job.
"""

import json

import pytest

from repro import (
    CrusadeConfig,
    GeneratorConfig,
    Tracer,
    crusade,
    generate_spec,
)
from repro.arch.architecture import Architecture
from repro.cluster.clustering import trivial_clustering
from repro.io.result_json import result_to_dict
from repro.resources.catalog import default_library
from repro.sched import bounds
from repro.sched.bounds import (
    NUMPY_KILL_SWITCH_ENV,
    NUMPY_MIN_TASKS,
    deadline_floor_stats,
    numpy_disabled_by_env,
)

numpy = pytest.importorskip("numpy")


def big_spec(seed, tasks=56, utilization=0.6):
    """One graph big enough to cross the numpy dispatch threshold."""
    spec = generate_spec(GeneratorConfig(
        seed=seed, n_graphs=1, tasks_per_graph=tasks, compat_group_size=2,
        utilization=utilization, hw_only_fraction=0.0, mixed_fraction=0.0,
    ))
    assert len(next(iter(spec.graphs.values()))) >= NUMPY_MIN_TASKS
    return spec


def _allocated_setup(seed, stride=1):
    """Trivial clustering with every ``stride``-th cluster allocated
    onto its own processor: a partial allocation mid-inner-loop."""
    library = default_library()
    spec = big_spec(seed)
    clustering = trivial_clustering(spec, library)
    arch = Architecture(library)
    cpu = library.pe_type("MC68360")
    for i, cluster in enumerate(clustering.ordered_by_priority()):
        if i % stride:
            continue
        pe = arch.new_pe(cpu)
        arch.allocate_cluster(
            cluster.name, pe.id, 0, gates=cluster.area_gates,
            pins=cluster.pins, memory=cluster.memory,
        )
    return next(iter(spec.graphs.values())), arch, clustering


@pytest.mark.parametrize("stride", [1, 2, 3])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_kernel_stats_bit_identical_to_python(seed, stride, monkeypatch):
    graph, arch, clustering = _allocated_setup(seed, stride)
    fast = deadline_floor_stats(graph, arch, clustering)
    monkeypatch.setenv(NUMPY_KILL_SWITCH_ENV, "1")
    slow = deadline_floor_stats(graph, arch, clustering)
    # Tuple equality on (int, float): bit parity, no tolerance.
    assert fast == slow


def test_numpy_path_actually_engages():
    """The parity test must compare two different code paths: the
    kernel cache grows when the fast path runs."""
    graph, arch, clustering = _allocated_setup(5)
    bounds._kernel_cache.clear()
    deadline_floor_stats(graph, arch, clustering)
    assert len(bounds._kernel_cache) == 1
    kernel = next(iter(bounds._kernel_cache.values()))
    assert kernel.graph is graph


def test_small_graphs_stay_on_python_path():
    spec = generate_spec(GeneratorConfig(
        seed=3, n_graphs=1, tasks_per_graph=6, utilization=0.2,
        hw_only_fraction=0.0, mixed_fraction=0.0,
    ))
    library = default_library()
    clustering = trivial_clustering(spec, library)
    arch = Architecture(library)
    bounds._kernel_cache.clear()
    deadline_floor_stats(next(iter(spec.graphs.values())), arch, clustering)
    assert not bounds._kernel_cache


def canonical(spec, **config_kw):
    config = CrusadeConfig(max_explicit_copies=2, **config_kw)
    result = crusade(spec, config=config, tracer=Tracer())
    payload = result_to_dict(result)
    payload.pop("cpu_seconds", None)
    payload.pop("stats", None)
    return json.dumps(payload, sort_keys=True)


def test_synthesis_identical_under_kill_switch(monkeypatch):
    """End to end: a workload whose graphs dispatch to the kernel
    synthesizes the same architecture with numpy killed."""
    spec = big_spec(9, utilization=0.8)
    fast = canonical(spec)
    monkeypatch.setenv(NUMPY_KILL_SWITCH_ENV, "1")
    assert numpy_disabled_by_env()
    assert canonical(spec) == fast


def test_kill_switch_probe_semantics(monkeypatch):
    monkeypatch.delenv(NUMPY_KILL_SWITCH_ENV, raising=False)
    assert not numpy_disabled_by_env()
    for value, disabled in (("", False), ("0", False),
                            ("1", True), ("yes", True)):
        monkeypatch.setenv(NUMPY_KILL_SWITCH_ENV, value)
        assert numpy_disabled_by_env() is disabled
    monkeypatch.setenv(NUMPY_KILL_SWITCH_ENV, "1")
    assert bounds._numpy() is None
    monkeypatch.delenv(NUMPY_KILL_SWITCH_ENV)
    assert bounds._numpy() is numpy


def test_guarded_import_surfaced_via_prune():
    """The no-numpy CI job imports the probe through the pruning
    facade; the floor machinery must not require numpy at import."""
    from repro.perf.prune import numpy_disabled_by_env as surfaced

    assert surfaced is numpy_disabled_by_env
