"""Candidate pruning is dominance pruning, not a heuristic.

Property suite fuzzing generated workloads: the synthesized result
must be byte-identical with pruning on, off, and killed via the
environment -- including workloads that drive the deferred
least-infeasible fallback reconstruction.  Unit tests pin the bound
primitives: a deliberately deadline-infeasible candidate is cut
without any scheduler call, and the finish-time floor never exceeds
the real schedule.
"""

import json
import types

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    CrusadeConfig,
    GeneratorConfig,
    SystemSpec,
    Task,
    TaskGraph,
    Tracer,
    crusade,
    generate_spec,
)
from repro.arch.architecture import Architecture
from repro.cluster.clustering import trivial_clustering
from repro.graph.association import AssociationArray
from repro.graph.task import MemoryRequirement
from repro.io.result_json import result_to_dict
from repro.perf.prune import (
    KILL_SWITCH_ENV,
    CandidatePruner,
    RepairBound,
    prune_disabled_by_env,
    pruning_active,
)
from repro.sched.bounds import (
    best_case_exec_vector,
    demand_floor,
    finish_time_floor,
)

PROPERTY_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_spec(seed, utilization=0.5):
    return generate_spec(GeneratorConfig(
        seed=seed, n_graphs=2, tasks_per_graph=6, compat_group_size=2,
        utilization=utilization, hw_only_fraction=0.2, mixed_fraction=0.15,
    ))


def canonical(spec, tracer=None, **config_kw):
    config = CrusadeConfig(max_explicit_copies=2, **config_kw)
    result = crusade(spec, config=config, tracer=tracer)
    payload = result_to_dict(result)
    payload.pop("cpu_seconds", None)
    payload.pop("stats", None)
    return json.dumps(payload, sort_keys=True)


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=40), reconfig=st.booleans())
def test_pruned_equals_exhaustive(seed, reconfig):
    spec = make_spec(seed)
    pruned = canonical(spec, reconfiguration=reconfig, prune=True)
    exhaustive = canonical(spec, reconfiguration=reconfig, prune=False)
    assert pruned == exhaustive


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=20))
def test_pruned_equals_exhaustive_under_pressure(seed):
    """Full-utilization workloads: many candidates are provably
    infeasible, so the cut rate is high and infeasible clusters route
    through the deferred fallback reconstruction."""
    spec = generate_spec(GeneratorConfig(
        seed=seed, n_graphs=3, tasks_per_graph=7, compat_group_size=2,
        utilization=1.0, hw_only_fraction=0.1, mixed_fraction=0.1,
    ))
    assert canonical(spec, prune=True) == canonical(spec, prune=False)


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=20))
def test_env_kill_switch_equals_config_off(seed):
    import os

    spec = make_spec(seed)
    enabled = canonical(spec, prune=True)
    os.environ[KILL_SWITCH_ENV] = "1"
    try:
        assert prune_disabled_by_env()
        assert not pruning_active(CrusadeConfig(prune=True))
        killed = canonical(spec, prune=True)
    finally:
        del os.environ[KILL_SWITCH_ENV]
    assert canonical(spec, prune=False) == killed
    assert enabled == killed


def test_prune_cuts_and_counters_balance():
    """Pinned workload with a high cut rate: the decision identity
    prune.cut + prune.kept == considered - apply_failed holds on the
    allocation loop's counters, and the fallback reconstruction both
    evaluates and skips pruned candidates."""
    spec = generate_spec(GeneratorConfig(
        seed=12, n_graphs=3, tasks_per_graph=7, compat_group_size=2,
        utilization=1.0, hw_only_fraction=0.1, mixed_fraction=0.1,
    ))
    tracer = Tracer()
    crusade(spec, config=CrusadeConfig(max_explicit_copies=2), tracer=tracer)
    c = tracer.counters.as_dict()
    assert c.get("prune.cut", 0) > 0
    assert c.get("prune.fallback_evals", 0) > 0
    assert c.get("prune.fallback_skipped", 0) > 0
    # Reason counters partition the cuts.
    reasons = sum(v for k, v in c.items() if k.startswith("prune.cut."))
    assert reasons == c["prune.cut"]
    # Decision identity on the allocation loop: every applied candidate
    # is either cut or kept (repair and merge shares counted apart).
    alloc_cut = c["prune.cut"] - c.get("prune.cut.repair", 0) \
        - c.get("prune.cut.merge", 0)
    alloc_kept = c["prune.kept"] - c.get("prune.kept.repair", 0)
    assert alloc_cut + alloc_kept == (
        c["alloc.options.considered"] - c.get("alloc.options.apply_failed", 0)
    )


def test_decision_counters_match_across_engine_paths():
    """Prune decisions are identical between the copy-on-write and
    clone-based inner loops."""
    spec = make_spec(3)
    names = (
        "prune.cut", "prune.kept", "prune.fallback_evals",
        "prune.fallback_skipped", "alloc.options.considered",
        "alloc.options.infeasible",
    )

    def counters(incremental):
        tracer = Tracer()
        config = CrusadeConfig(max_explicit_copies=2, incremental=incremental)
        crusade(spec, config=config, tracer=tracer)
        return tracer.counters.as_dict()

    cow = counters(True)
    clone = counters(False)
    for name in names:
        assert cow.get(name, 0) == clone.get(name, 0), name


# ---------------------------------------------------------------- units

def _mem():
    return MemoryRequirement(program=1024, data=512, stack=128)


def _late_chain_setup(small_library, deadline=0.0008):
    """A three-task CPU chain whose critical path (3 x (0.5 ms + ctx))
    provably exceeds the deadline."""
    g = TaskGraph(name="late", period=0.01, deadline=deadline)
    for name in ("a", "b", "c"):
        g.add_task(Task(name=name, exec_times={"CPU": 0.0005}, memory=_mem()))
    g.add_edge("a", "b", bytes_=64)
    g.add_edge("b", "c", bytes_=64)
    spec = SystemSpec("late", [g])
    clustering = trivial_clustering(spec, small_library)
    arch = Architecture(small_library)
    pe = arch.new_pe(small_library.pe_type("CPU"))
    for cluster in clustering.ordered_by_priority():
        arch.allocate_cluster(
            cluster.name, pe.id, 0, gates=cluster.area_gates,
            pins=cluster.pins, memory=cluster.memory,
        )
    assoc = AssociationArray(spec, max_explicit_copies=2)
    return spec, assoc, clustering, arch, pe


def test_deadline_infeasible_candidate_cut_without_scheduling(
    small_library, monkeypatch
):
    spec, assoc, clustering, arch, pe = _late_chain_setup(small_library)

    def boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("the pruner must not invoke the scheduler")

    import repro.sched.scheduler as scheduler

    monkeypatch.setattr(scheduler, "build_schedule", boom)

    cluster = clustering.clusters[
        clustering.task_to_cluster[("late", "c")]
    ]
    pruner = CandidatePruner(spec, assoc, clustering, cluster)
    option = types.SimpleNamespace(
        kind="existing", pe_id=pe.id, pe_type_name="CPU",
        mode_index=0, replicate=(),
    )
    verdict = pruner.bound(arch, option, graphs=None)
    assert verdict is not None
    assert verdict.reason == "deadline"
    assert verdict.floor[0] >= 1
    assert verdict.floor[1] > 0.0
    # Memoized second call, still no scheduler.
    assert pruner.bound(arch, option, graphs=None) is verdict


def test_feasible_candidate_is_not_cut(small_library):
    # Same chain with a comfortable deadline: no cut.
    spec, assoc, clustering, arch, pe = _late_chain_setup(
        small_library, deadline=0.008
    )
    cluster = clustering.clusters[clustering.task_to_cluster[("late", "a")]]
    pruner = CandidatePruner(spec, assoc, clustering, cluster)
    option = types.SimpleNamespace(
        kind="existing", pe_id=pe.id, pe_type_name="CPU",
        mode_index=0, replicate=(),
    )
    assert pruner.bound(arch, option, graphs=None) is None


def test_finish_time_floor_is_dominated_by_real_schedule(small_library):
    """The copy-0 floor never exceeds the scheduler's finish times."""
    from repro.cluster.priority import PriorityContext
    from repro.core.crusade import _compute_priorities
    from repro.sched.scheduler import ScheduleRequest, build_schedule

    spec, assoc, clustering, arch, pe = _late_chain_setup(
        small_library, deadline=0.008
    )
    graph = spec.graph("late")
    floor = finish_time_floor(graph, arch, clustering)
    priorities = _compute_priorities(
        spec, PriorityContext.pessimistic(small_library)
    )
    schedule = build_schedule(ScheduleRequest(
        spec=spec, assoc=assoc, clustering=clustering, arch=arch,
        priorities=priorities, preemption=True,
    ))
    for task_name in graph.topological_order():
        actual = schedule.tasks[("late", 0, task_name)].finish
        assert floor[task_name] <= actual, task_name


def test_demand_floor_sums_serial_occupancy(small_library):
    spec, assoc, clustering, arch, pe = _late_chain_setup(small_library)
    demand = demand_floor(arch, clustering, spec, assoc)
    ctx = small_library.pe_type("CPU").context_switch_time
    copies = assoc.n_copies("late")
    expected = 3 * (0.0005 + ctx) * copies
    assert demand[pe.id] == pytest.approx(expected, rel=1e-12)


def test_best_case_exec_vector_charges_context_switch(small_library):
    spec, assoc, clustering, arch, pe = _late_chain_setup(small_library)
    vector = best_case_exec_vector(spec.graph("late"), arch, clustering)
    ctx = small_library.pe_type("CPU").context_switch_time
    assert vector["a"] == pytest.approx(0.0005 + ctx, rel=1e-12)


def test_repair_bound_floor_is_admissible(small_library):
    """The full-scope floor counts the chain's provable miss."""
    spec, assoc, clustering, arch, pe = _late_chain_setup(small_library)
    bound = RepairBound(spec, assoc, clustering)
    floor = bound.badness_floor(arch)
    assert floor[0] >= 1
    assert floor[2] == pytest.approx(arch.cost)
