"""The persistent store: encoding, digests, disk tiers, fault tolerance.

Covers the store's own contracts in isolation -- canonical encoding
determinism and collision-freedom, digest sensitivity to exactly the
inputs that matter, pickle round-trips of both tiers, version-stamp
enforcement, corrupt-entry tolerance, and the two-process same-key
write race the shared campaign store must survive.  The end-to-end
warm-vs-cold identity contract lives in ``test_warmstart.py``.
"""

from __future__ import annotations

import multiprocessing
import pathlib
import pickle

import pytest

from repro.core.config import CrusadeConfig
from repro.graph.generator import GeneratorConfig, generate_spec
from repro.perf.store import (
    SynthesisStore,
    StoreFormatError,
    canonical_encode,
    catalog_digest,
    config_digest,
    fingerprint_digest,
    graph_digests,
    resolve_store,
    spec_digest,
    store_reads_enabled,
)
from repro.perf.store.disk import ENV_CACHE_DIR, FORMAT_FILE, KILL_SWITCH_ENV
from repro.resources.catalog import default_library


def _spec(seed: int = 7):
    return generate_spec(
        GeneratorConfig(seed=seed, n_graphs=2, tasks_per_graph=5)
    )


# ----------------------------------------------------------------------
# canonical encoding
# ----------------------------------------------------------------------
class TestCanonicalEncode:
    """The tagged binary encoding under the digests."""

    def test_deterministic(self):
        value = (("g0", 2, ((0, 0.0), (1, 0.5)), (1.0, 2.5), None), True)
        assert canonical_encode(value) == canonical_encode(value)

    def test_distinguishes_types(self):
        # 1 vs 1.0 vs "1" vs True must not collide.
        encodings = {
            canonical_encode(1),
            canonical_encode(1.0),
            canonical_encode("1"),
            canonical_encode(True),
        }
        assert len(encodings) == 4

    def test_length_prefix_prevents_boundary_collisions(self):
        assert canonical_encode(("ab", "c")) != canonical_encode(("a", "bc"))
        assert canonical_encode((("a",), "b")) != canonical_encode((("a", "b"),))

    def test_negative_zero_and_ints(self):
        assert canonical_encode(0.0) != canonical_encode(-0.0)
        assert canonical_encode(10) != canonical_encode(1)
        assert canonical_encode(-1) != canonical_encode(1)

    def test_rejects_unencodable(self):
        with pytest.raises(TypeError):
            canonical_encode({"a": 1})
        with pytest.raises(TypeError):
            canonical_encode(object())


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------
class TestDigests:
    """Content digests change exactly when content changes."""

    def test_spec_digest_stable_across_round_trip(self):
        from repro.io.spec_json import load_spec, spec_to_dict
        import json

        spec = _spec()
        clone = load_spec(json.dumps(spec_to_dict(spec)))
        assert spec_digest(spec) == spec_digest(clone)

    def test_graph_digest_sees_deadline_change(self):
        from repro.perf.warmstart import tweak_deadline

        spec = _spec()
        tweaked = tweak_deadline(spec)
        before = graph_digests(spec)
        after = graph_digests(tweaked)
        differing = [n for n in before if before[n] != after[n]]
        assert len(differing) == 1

    def test_config_digest_ignores_identity_neutral_knobs(self):
        base = CrusadeConfig()
        for variant in (
            CrusadeConfig(incremental=False),
            CrusadeConfig(prune=False),
            CrusadeConfig(bound_abort=False),
            CrusadeConfig(timeline="tree"),
            CrusadeConfig(parallel_eval=4),
            CrusadeConfig(pool_batch=1),
            CrusadeConfig(cache_dir="/tmp/x", warm_start=False),
        ):
            assert config_digest(variant) == config_digest(base)

    def test_config_digest_sees_semantic_knobs(self):
        base = config_digest(CrusadeConfig())
        assert config_digest(CrusadeConfig(reconfiguration=False)) != base
        assert config_digest(CrusadeConfig(max_explicit_copies=2)) != base
        assert config_digest(CrusadeConfig(policy="largest-first")) != base

    def test_catalog_digest_sees_library_content(self):
        from repro.resources.library import ResourceLibrary
        from repro.resources.pe import ProcessorType

        library = default_library()
        base = catalog_digest(library)
        assert base == catalog_digest(default_library())
        grown = ResourceLibrary(
            pe_types=list(library.pe_types.values())
            + [ProcessorType(name="EXTRA", cost=1.0)],
            link_types=list(library.link_types.values()),
        )
        assert catalog_digest(grown) != base

    def test_fingerprint_digest_is_order_sensitive(self):
        assert fingerprint_digest((("a", 1),)) != fingerprint_digest((("a", 2),))


# ----------------------------------------------------------------------
# disk tiers
# ----------------------------------------------------------------------
class TestDisk:
    """Round-trips, versioning and corruption tolerance."""

    def test_result_round_trip(self, tmp_path):
        from repro.core.crusade import crusade

        spec = _spec()
        result = crusade(spec, config=CrusadeConfig())
        store = SynthesisStore(tmp_path)
        key = store.result_key(spec, default_library(), CrusadeConfig())
        assert store.load_result(key) is None
        store.save_result(key, result)
        loaded = store.load_result(key)
        from repro.io.result_json import canonical_result_json

        assert canonical_result_json(loaded) == canonical_result_json(result)

    def test_fragment_round_trip(self, tmp_path):
        from repro.perf.engine import Fragment
        from repro.sched.scheduler import Schedule

        store = SynthesisStore(tmp_path)
        fragment = Fragment(Schedule(), {"g0": {("g0", 0, "t"): 0.25}},
                            {"pe0": 1.5}, 0)
        assert store.load_fragment("ab" * 16, "cd" * 16) is None
        store.save_fragment("ab" * 16, "cd" * 16, fragment)
        loaded = store.load_fragment("ab" * 16, "cd" * 16)
        assert loaded.lateness == fragment.lateness
        assert loaded.demand == fragment.demand
        assert loaded.misses == 0

    def test_format_stamp_enforced(self, tmp_path):
        SynthesisStore(tmp_path)  # stamps
        (tmp_path / FORMAT_FILE).write_text("crusade-store/999\n")
        with pytest.raises(StoreFormatError):
            SynthesisStore(tmp_path)

    def test_reopen_same_version_ok(self, tmp_path):
        SynthesisStore(tmp_path)
        SynthesisStore(tmp_path)  # idempotent

    @pytest.mark.parametrize("garbage", [
        b"", b"not a pickle", b"\x80\x04garbage",
        pickle.dumps(("wrong-tag", 1, None)),
        pickle.dumps(("crusade-store-fragment", 999, None)),
        pickle.dumps("not-a-tuple"),
    ])
    def test_corrupt_fragment_is_a_counted_miss(self, tmp_path, garbage):
        from repro.obs import Tracer

        store = SynthesisStore(tmp_path)
        path = store._fragment_path("ab" * 16, "cd" * 16)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(garbage)
        tracer = Tracer()
        assert store.load_fragment("ab" * 16, "cd" * 16, tracer) is None
        assert tracer.counters.get("perf.store.corrupt") == 1
        assert not path.exists()  # dropped

    def test_corrupt_index_is_a_miss(self, tmp_path):
        store = SynthesisStore(tmp_path)
        store.save_index("demo", {"graphs": {}})
        assert store.load_index("demo")["spec"] == "demo"
        store._index_path("demo").write_text("{broken")
        assert store.load_index("demo") is None

    def test_truncated_result_is_a_miss(self, tmp_path):
        store = SynthesisStore(tmp_path)
        store.save_result("k", {"payload": 1})
        path = store._result_path("k")
        path.write_bytes(path.read_bytes()[:10])
        assert store.load_result("k") is None


# ----------------------------------------------------------------------
# resolution and kill switches
# ----------------------------------------------------------------------
class TestResolution:
    """``resolve_store`` precedence and the read kill switches."""

    def test_no_cache_dir_means_no_store(self, monkeypatch):
        monkeypatch.delenv(ENV_CACHE_DIR, raising=False)
        assert resolve_store(CrusadeConfig()) is None

    def test_config_cache_dir_wins(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_CACHE_DIR, raising=False)
        store = resolve_store(CrusadeConfig(cache_dir=str(tmp_path / "a")))
        assert store is not None
        assert store.root == tmp_path / "a"

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "b"))
        store = resolve_store(CrusadeConfig())
        assert store is not None
        assert store.root == tmp_path / "b"

    def test_reads_killed_by_config_and_env(self, monkeypatch):
        monkeypatch.delenv(KILL_SWITCH_ENV, raising=False)
        assert store_reads_enabled(CrusadeConfig())
        assert not store_reads_enabled(CrusadeConfig(warm_start=False))
        monkeypatch.setenv(KILL_SWITCH_ENV, "1")
        assert not store_reads_enabled(CrusadeConfig())
        monkeypatch.setenv(KILL_SWITCH_ENV, "0")
        assert store_reads_enabled(CrusadeConfig())


# ----------------------------------------------------------------------
# concurrency: racing writers must never corrupt an entry
# ----------------------------------------------------------------------
def _race_writer(root: str, rounds: int, payload_size: int) -> None:
    """Hammer the same fragment and result keys with atomic writes."""
    store = SynthesisStore(root)
    payload = {"blob": "x" * payload_size}
    for i in range(rounds):
        store.save_fragment("ab" * 16, "cd" * 16, payload)
        store.save_result("race-key", payload)
        store.save_index("race-spec", {"graphs": {}, "round": i})


@pytest.mark.slow
def test_two_process_same_key_race(tmp_path):
    """Two processes writing the same keys leave only loadable entries."""
    workers = [
        multiprocessing.Process(
            target=_race_writer, args=(str(tmp_path), 60, 4096)
        )
        for _ in range(2)
    ]
    store = SynthesisStore(tmp_path)
    for worker in workers:
        worker.start()
    # Read concurrently with the writers: any non-None load must be
    # complete and well-formed (atomic replace means no torn reads).
    observed = 0
    while any(w.is_alive() for w in workers):
        fragment = store.load_fragment("ab" * 16, "cd" * 16)
        if fragment is not None:
            assert fragment["blob"] == "x" * 4096
            observed += 1
    for worker in workers:
        worker.join()
        assert worker.exitcode == 0
    # After the dust settles everything loads cleanly.
    assert store.load_fragment("ab" * 16, "cd" * 16)["blob"] == "x" * 4096
    assert store.load_result("race-key")["blob"] == "x" * 4096
    assert store.load_index("race-spec")["spec"] == "race-spec"
    # No temp-file litter survived the race.
    litter = [
        p for p in pathlib.Path(tmp_path).rglob("*.tmp.*")
    ]
    assert litter == []
