"""Cross-process portability of every store digest.

The persistent store is only useful if the digests that address it are
identical across *processes* -- different ``PYTHONHASHSEED`` values,
different interpreter invocations, campaign workers on other machines.
This suite computes the full digest surface (spec, per-graph, catalog,
config, and the component fingerprint digests of a real synthesis run)
in two subprocesses with deliberately different hash seeds and asserts
byte-identical output.  Anything hash-randomization-sensitive (set or
dict iteration order leaking into an encoding) fails loudly here.
"""

from __future__ import annotations

import os
import subprocess
import sys

#: Computes every digest kind and prints them, one per line, in a
#: deterministic order.  Runs unchanged under any PYTHONHASHSEED.
_DIGEST_SCRIPT = """
import pathlib, sys, tempfile
from repro.core.config import CrusadeConfig
from repro.core.crusade import crusade
from repro.graph.generator import GeneratorConfig, generate_spec
from repro.perf.store import (
    catalog_digest, config_digest, graph_digests, spec_digest,
)
from repro.resources.catalog import default_library

spec = generate_spec(GeneratorConfig(seed=11, n_graphs=3, tasks_per_graph=6))
library = default_library()
config = CrusadeConfig()

print("spec", spec_digest(spec))
for name, digest in sorted(graph_digests(spec).items()):
    print("graph", name, digest)
print("catalog", catalog_digest(library))
print("config", config_digest(config))

# The component fingerprint digests are exercised end-to-end: a cached
# run names every fragment file <fingerprint>-<validity>.pkl, so the
# sorted relative filenames ARE the cross-run addressing surface.
with tempfile.TemporaryDirectory() as cache_dir:
    result = crusade(
        spec, config=CrusadeConfig(cache_dir=cache_dir)
    )
    root = pathlib.Path(cache_dir)
    for kind in ("results", "fragments", "index"):
        for path in sorted((root / kind).rglob("*")):
            if path.is_file():
                print("entry", path.relative_to(root))
    print("cost", result.cost)
    print("feasible", result.feasible)
"""


def _digests_with_hash_seed(seed: str) -> str:
    """Run the digest script in a subprocess pinned to one hash seed."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), os.path.abspath("src")) if p
    )
    completed = subprocess.run(
        [sys.executable, "-c", _DIGEST_SCRIPT],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_digests_survive_hash_randomization():
    """Every digest is identical under PYTHONHASHSEED=0 and =4242."""
    baseline = _digests_with_hash_seed("0")
    randomized = _digests_with_hash_seed("4242")
    assert baseline == randomized
    # Sanity: the run actually produced the full digest surface.
    assert "spec " in baseline
    assert "catalog " in baseline
    assert "entry fragments/" in baseline
    assert "entry results/" in baseline


def test_digests_match_in_process():
    """The subprocess digests equal this process's own computation."""
    from repro.core.config import CrusadeConfig
    from repro.graph.generator import GeneratorConfig, generate_spec
    from repro.perf.store import spec_digest

    spec = generate_spec(GeneratorConfig(seed=11, n_graphs=3, tasks_per_graph=6))
    line = "spec %s" % spec_digest(spec)
    assert line in _digests_with_hash_seed("7")
