"""The two small inner-loop memoizations: scope cache and link-type
choice.

The sub-specification (scope) cache must report hits/misses, respect
its LRU bound, and key per specification object; the link-type memo
must return the same choice the unmemoized search would and notice a
library whose link set changed size.
"""

from repro import SystemSpec, Task, TaskGraph, Tracer
from repro.arch.architecture import Architecture
from repro.graph.association import AssociationArray
from repro.resources.catalog import default_library
from repro.resources.link import LinkType
from repro.alloc import evaluate as evaluate_mod
from repro.alloc.evaluate import SCOPE_CACHE_MAX_ENTRIES, _scope, choose_link_type


def many_graph_spec(n=6):
    graphs = []
    for i in range(n):
        g = TaskGraph(name="g%d" % i, period=0.1, deadline=0.05)
        g.add_task(Task(name="t", exec_times={"MC68360": 1e-3}))
        graphs.append(g)
    return SystemSpec("s", graphs)


def test_scope_cache_hits_and_misses():
    spec = many_graph_spec()
    assoc = AssociationArray(spec, max_explicit_copies=2)
    tracer = Tracer()
    first = _scope(spec, assoc, ["g0", "g1"], tracer)
    again = _scope(spec, assoc, ["g1", "g0"], tracer)  # order-insensitive
    assert first is again
    other = _scope(spec, assoc, ["g2"], tracer)
    assert other is not first
    counters = tracer.counters.as_dict()
    assert counters["scope.misses"] == 2
    assert counters["scope.hits"] == 1


def test_scope_cache_is_per_spec():
    spec_a = many_graph_spec()
    spec_b = many_graph_spec()
    assoc_a = AssociationArray(spec_a, max_explicit_copies=2)
    assoc_b = AssociationArray(spec_b, max_explicit_copies=2)
    scoped_a = _scope(spec_a, assoc_a, ["g0"])
    scoped_b = _scope(spec_b, assoc_b, ["g0"])
    assert scoped_a is not scoped_b
    assert scoped_a[0].graph("g0") is spec_a.graph("g0")


def test_scope_cache_lru_bound():
    spec = many_graph_spec(n=8)
    assoc = AssociationArray(spec, max_explicit_copies=2)
    tracer = Tracer()
    names = spec.graph_names()
    # More distinct subsets than the cache holds: all singletons and
    # pairs of 8 graphs is 36 > 64? no -- so hammer repeats of rotated
    # windows until evictions must occur.
    import itertools

    subsets = [list(c) for r in (1, 2, 3)
               for c in itertools.combinations(names, r)]
    assert len(subsets) > SCOPE_CACHE_MAX_ENTRIES
    for subset in subsets:
        _scope(spec, assoc, subset, tracer)
    counters = tracer.counters.as_dict()
    assert counters["scope.misses"] == len(subsets)
    assert counters["scope.evictions"] == len(subsets) - SCOPE_CACHE_MAX_ENTRIES
    with evaluate_mod._scope_lock:
        assert len(evaluate_mod._scope_cache[spec]) == SCOPE_CACHE_MAX_ENTRIES


def test_choose_link_type_memoized_and_correct():
    library = default_library()
    arch = Architecture(library)
    for strategy in ("cheapest", "fastest"):
        first = choose_link_type(arch, strategy)
        assert choose_link_type(arch, strategy) is first
    links = library.links_by_cost()
    cheapest = min(links, key=lambda l: (l.instance_cost(2), l.name))
    fastest = min(links, key=lambda l: (l.comm_time(256), l.name))
    assert choose_link_type(arch, "cheapest") is cheapest
    assert choose_link_type(arch, "fastest") is fastest


def test_choose_link_type_notices_grown_library():
    library = default_library()
    arch = Architecture(library)
    before = choose_link_type(arch, "cheapest")
    # A dirt-cheap new link type invalidates the memo (link count
    # changed), so the fresh minimum is found.
    library.add_link_type(LinkType(
        name="freebie",
        cost=0.001,
        max_ports=4,
        access_times=(1e-6, 1e-6, 2e-6, 3e-6),
        bytes_per_packet=64,
        packet_tx_time=1e-6,
        cost_per_port=0.001,
        assumed_ports=2,
    ))
    after = choose_link_type(arch, "cheapest")
    assert after is not before
    assert after.name == "freebie"
