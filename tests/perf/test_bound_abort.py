"""Incumbent-driven bound aborts are pure dominance, not a heuristic.

Property suite fuzzing generated workloads: the synthesized result
must be byte-identical with bound aborts on, off, and killed via the
environment -- an aborted candidate provably loses to the incumbent
that bounded it, so dropping it can never change the selection.  Unit
tests pin the trigger itself: the scheduler raises
:class:`ScheduleAbort` with the right reason the moment the partial
schedule's violation count exceeds the bound, and never when no bound
is given.
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    CrusadeConfig,
    GeneratorConfig,
    SystemSpec,
    Task,
    TaskGraph,
    Tracer,
    crusade,
    generate_spec,
)
from repro.arch.architecture import Architecture
from repro.cluster.clustering import trivial_clustering
from repro.cluster.priority import PriorityContext
from repro.core.crusade import _compute_priorities
from repro.graph.association import AssociationArray
from repro.graph.task import MemoryRequirement
from repro.io.result_json import result_to_dict
from repro.perf.prune import (
    ABORT_KILL_SWITCH_ENV,
    bound_abort_active,
    bound_abort_disabled_by_env,
)
from repro.sched.scheduler import (
    ScheduleAbort,
    ScheduleRequest,
    build_schedule,
)

PROPERTY_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_spec(seed, utilization=0.5):
    return generate_spec(GeneratorConfig(
        seed=seed, n_graphs=2, tasks_per_graph=6, compat_group_size=2,
        utilization=utilization, hw_only_fraction=0.2, mixed_fraction=0.15,
    ))


def canonical(spec, tracer=None, **config_kw):
    config = CrusadeConfig(max_explicit_copies=2, **config_kw)
    result = crusade(spec, config=config, tracer=tracer)
    payload = result_to_dict(result)
    payload.pop("cpu_seconds", None)
    payload.pop("stats", None)
    return json.dumps(payload, sort_keys=True)


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=40), reconfig=st.booleans())
def test_bound_abort_equals_exhaustive(seed, reconfig):
    spec = make_spec(seed)
    bounded = canonical(spec, reconfiguration=reconfig, bound_abort=True)
    full = canonical(spec, reconfiguration=reconfig, bound_abort=False)
    assert bounded == full


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=20))
def test_bound_abort_equals_exhaustive_under_pressure(seed):
    """Full-utilization workloads: many infeasible candidates, so
    incumbents are established early and later evaluations abort."""
    spec = generate_spec(GeneratorConfig(
        seed=seed, n_graphs=3, tasks_per_graph=7, compat_group_size=2,
        utilization=1.0, hw_only_fraction=0.1, mixed_fraction=0.1,
    ))
    assert canonical(spec, bound_abort=True) == \
        canonical(spec, bound_abort=False)


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=20))
def test_bound_abort_composes_with_prune_off(seed):
    """The two dominance layers are independent knobs."""
    spec = make_spec(seed)
    assert canonical(spec, bound_abort=True, prune=False) == \
        canonical(spec, bound_abort=False, prune=False)


def test_env_kill_switch_equals_config_off():
    spec = make_spec(7, utilization=1.0)
    enabled = canonical(spec, bound_abort=True)
    os.environ[ABORT_KILL_SWITCH_ENV] = "1"
    try:
        assert bound_abort_disabled_by_env()
        assert not bound_abort_active(CrusadeConfig(bound_abort=True))
        killed = canonical(spec, bound_abort=True)
    finally:
        del os.environ[ABORT_KILL_SWITCH_ENV]
    assert not bound_abort_disabled_by_env()
    assert bound_abort_active(CrusadeConfig(bound_abort=True))
    assert not bound_abort_active(CrusadeConfig(bound_abort=False))
    assert canonical(spec, bound_abort=False) == killed
    assert enabled == killed


def _pressure_counters(**config_kw):
    spec = generate_spec(GeneratorConfig(
        seed=12, n_graphs=3, tasks_per_graph=7, compat_group_size=2,
        utilization=1.0, hw_only_fraction=0.1, mixed_fraction=0.1,
    ))
    tracer = Tracer()
    crusade(
        spec,
        config=CrusadeConfig(max_explicit_copies=2, **config_kw),
        tracer=tracer,
    )
    return tracer.counters.as_dict()


def test_abort_counters_under_pressure():
    """The pinned high-pressure workload actually aborts, the reason
    counters partition the total, and disabling the knob zeroes it."""
    c = _pressure_counters(bound_abort=True)
    assert c.get("sched.abort", 0) > 0
    reasons = sum(v for k, v in c.items() if k.startswith("sched.abort."))
    assert reasons == c["sched.abort"]
    off = _pressure_counters(bound_abort=False)
    assert off.get("sched.abort", 0) == 0


def test_abort_counters_match_across_engine_paths():
    """The trigger is an exact integer comparison on final violation
    counts, so the engine and from-scratch paths abort the *same*
    evaluations -- the totals and every decision counter match.  Only
    the per-reason split may differ: the engine books an abort tipped
    by a cached fragment as "carried", which the from-scratch run
    attributes to the violation it re-discovers in-run."""
    names = ("sched.abort", "alloc.options.considered",
             "alloc.options.infeasible", "prune.cut", "prune.kept")
    cow = _pressure_counters(bound_abort=True, incremental=True)
    clone = _pressure_counters(bound_abort=True, incremental=False)
    assert cow.get("sched.abort", 0) > 0
    for name in names:
        assert cow.get(name, 0) == clone.get(name, 0), name
    for c in (cow, clone):
        reasons = sum(v for k, v in c.items() if k.startswith("sched.abort."))
        assert reasons == c["sched.abort"]
    assert clone.get("sched.abort.carried", 0) == 0


# ---------------------------------------------------------------- units

def _mem():
    return MemoryRequirement(program=1024, data=512, stack=128)


def _chain_setup(small_library, period=0.01, deadline=0.0008):
    """A three-task CPU chain; tight deadlines provoke misses, a tight
    period provokes an overload."""
    g = TaskGraph(name="late", period=period, deadline=deadline)
    for name in ("a", "b", "c"):
        g.add_task(Task(name=name, exec_times={"CPU": 0.0005}, memory=_mem()))
    g.add_edge("a", "b", bytes_=64)
    g.add_edge("b", "c", bytes_=64)
    spec = SystemSpec("late", [g])
    clustering = trivial_clustering(spec, small_library)
    arch = Architecture(small_library)
    pe = arch.new_pe(small_library.pe_type("CPU"))
    for cluster in clustering.ordered_by_priority():
        arch.allocate_cluster(
            cluster.name, pe.id, 0, gates=cluster.area_gates,
            pins=cluster.pins, memory=cluster.memory,
        )
    assoc = AssociationArray(spec, max_explicit_copies=2)
    priorities = _compute_priorities(
        spec, PriorityContext.pessimistic(small_library)
    )
    return ScheduleRequest(
        spec=spec, assoc=assoc, clustering=clustering, arch=arch,
        priorities=priorities, preemption=True,
    )


def test_scheduler_aborts_on_provable_deadline_miss(small_library):
    from dataclasses import replace

    request = _chain_setup(small_library)
    # No bound: the schedule completes (and genuinely misses).
    build_schedule(request)
    with pytest.raises(ScheduleAbort) as exc:
        build_schedule(replace(request, bound=(0, 0.0, 0.0)))
    assert exc.value.reason == "deadline"


def test_scheduler_aborts_on_provable_overload(small_library):
    from dataclasses import replace

    # Comfortable deadline, impossible period: 3 x 0.5 ms of demand
    # against a 1 ms hyperperiod crosses capacity mid-schedule.
    request = _chain_setup(small_library, period=0.001, deadline=0.01)
    build_schedule(request)
    with pytest.raises(ScheduleAbort) as exc:
        build_schedule(replace(request, bound=(0, 0.0, 0.0)))
    assert exc.value.reason == "overload"


def test_loose_bound_never_fires(small_library):
    from dataclasses import replace

    from repro.sched.finish_time import evaluate_deadlines

    request = _chain_setup(small_library)
    schedule = build_schedule(request)
    report = evaluate_deadlines(schedule, request.spec, request.assoc)
    violations = report.badness()[0]
    # A bound the candidate does not exceed must never abort, and the
    # schedule must be the one the unbounded run produces.
    bounded = build_schedule(
        replace(request, bound=(violations, float("inf"), float("inf")))
    )
    assert bounded.tasks.keys() == schedule.tasks.keys()
    for key, placed in schedule.tasks.items():
        assert bounded.tasks[key].finish == placed.finish


def test_abort_is_exact_at_the_boundary(small_library):
    """bound[0] = violations - 1 fires; bound[0] = violations does
    not: the trigger is `violations > bound[0]`, exactly."""
    from dataclasses import replace

    from repro.sched.finish_time import evaluate_deadlines

    request = _chain_setup(small_library)
    schedule = build_schedule(request)
    report = evaluate_deadlines(schedule, request.spec, request.assoc)
    violations = report.badness()[0]
    assert violations >= 1
    with pytest.raises(ScheduleAbort):
        build_schedule(
            replace(request, bound=(violations - 1, 0.0, 0.0))
        )
    build_schedule(replace(request, bound=(violations, 0.0, 0.0)))
