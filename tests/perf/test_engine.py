"""Engine internals: fragment cache hits, LRU bound, kill switches.

The equivalence suite (test_equivalence.py) proves the engine never
changes the synthesized result; these tests pin down *how* it wins --
repeated evaluations hit the cache -- and that both kill switches
really disable it.
"""

import pytest

from repro import CrusadeConfig, GeneratorConfig, Tracer, crusade, generate_spec
from repro.cluster.clustering import cluster_spec
from repro.core.crusade import _allocation_aware_context, _compute_priorities
from repro.graph.association import AssociationArray
from repro.obs.trace import NULL_TRACER
from repro.resources.catalog import default_library
from repro.alloc.evaluate import evaluate_architecture
from repro.perf.engine import (
    IncrementalEngine,
    incremental_disabled_by_env,
    resolve_engine,
)


@pytest.fixture
def workload():
    spec = generate_spec(GeneratorConfig(
        seed=7, n_graphs=3, tasks_per_graph=5, compat_group_size=2,
        utilization=0.2, hw_only_fraction=0.35, mixed_fraction=0.15,
    ))
    library = default_library()
    result = crusade(spec, library=library,
                     config=CrusadeConfig(max_explicit_copies=2))
    clustering = result.clustering
    assoc = AssociationArray(spec, max_explicit_copies=2)
    context = _allocation_aware_context(library, result.arch, clustering)
    priorities = _compute_priorities(spec, context)
    return spec, assoc, clustering, result.arch, priorities


def evaluate(workload, engine, tracer=NULL_TRACER):
    spec, assoc, clustering, arch, priorities = workload
    return evaluate_architecture(
        spec, assoc, clustering, arch, priorities, tracer=tracer,
        engine=engine,
    )


def test_repeated_evaluation_hits_the_cache(workload):
    engine = IncrementalEngine()
    tracer = Tracer()
    evaluate(workload, engine, tracer)
    misses_first = tracer.counters.as_dict().get("perf.schedule.misses", 0)
    assert misses_first > 0
    evaluate(workload, engine, tracer)
    counters = tracer.counters.as_dict()
    assert counters.get("perf.schedule.misses", 0) == misses_first
    assert counters.get("perf.schedule.hits", 0) == misses_first


def test_engine_verdict_matches_from_scratch(workload):
    with_engine = evaluate(workload, IncrementalEngine())
    scratch = evaluate(workload, None)
    assert with_engine.cost == scratch.cost
    assert with_engine.report.lateness == scratch.report.lateness
    assert list(with_engine.report.lateness) == list(scratch.report.lateness)
    assert with_engine.report.overloaded == scratch.report.overloaded
    wanted = {
        k: (v.pe_id, v.mode, v.start, v.finish)
        for k, v in scratch.schedule.tasks.items()
    }
    got = {
        k: (v.pe_id, v.mode, v.start, v.finish)
        for k, v in with_engine.schedule.tasks.items()
    }
    assert wanted == got


def test_lru_bound_is_enforced(workload):
    engine = IncrementalEngine(max_entries=1)
    tracer = Tracer()
    evaluate(workload, engine, tracer)
    info = engine.cache_info()
    assert info["entries"] <= 1
    assert info["max_entries"] == 1
    counters = tracer.counters.as_dict()
    misses = counters.get("perf.schedule.misses", 0)
    if misses > 1:
        assert counters.get("perf.schedule.evictions", 0) == misses - 1


def test_max_entries_validated():
    with pytest.raises(ValueError):
        IncrementalEngine(max_entries=0)


def test_resolve_engine_kill_switches(monkeypatch):
    monkeypatch.delenv("REPRO_NO_INCREMENTAL", raising=False)
    assert not incremental_disabled_by_env()
    assert resolve_engine(CrusadeConfig()) is not None
    assert resolve_engine(CrusadeConfig(incremental=False)) is None
    donated = IncrementalEngine()
    assert resolve_engine(CrusadeConfig(), donated) is donated

    monkeypatch.setenv("REPRO_NO_INCREMENTAL", "1")
    assert incremental_disabled_by_env()
    assert resolve_engine(CrusadeConfig()) is None
    assert resolve_engine(CrusadeConfig(), donated) is None
    # "0" and "" mean "not disabled".
    monkeypatch.setenv("REPRO_NO_INCREMENTAL", "0")
    assert not incremental_disabled_by_env()


def test_parallel_eval_validated():
    from repro.errors import SpecificationError

    with pytest.raises(SpecificationError):
        CrusadeConfig(parallel_eval=-1)
