"""Copy-on-write option application: bit-exact apply/revert.

The undo journal must restore every observable field of the working
architecture -- gate/pin/memory counters, mode lists, replica tables,
link ports, instance counters -- and committing must leave exactly the
state that clone-then-apply would have produced.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import GeneratorConfig, generate_spec
from repro.arch.architecture import Architecture
from repro.cluster.clustering import cluster_spec
from repro.cluster.priority import PriorityContext
from repro.core.config import CrusadeConfig
from repro.resources.catalog import default_library
from repro.alloc.array import build_allocation_array
from repro.alloc.evaluate import apply_option, apply_option_cow

PROPERTY_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def arch_state(arch):
    """Every observable field, in a comparable form."""
    return {
        "pes": {
            pe.id: {
                "type": pe.pe_type.name,
                "modes": [
                    (m.index, sorted(m.clusters), m.gates_used, m.pins_used,
                     (m.memory_used.program, m.memory_used.data,
                      m.memory_used.stack))
                    for m in pe.modes
                ],
                "cluster_modes": dict(pe.cluster_modes),
                "replica_modes": {
                    name: sorted(modes)
                    for name, modes in pe.replica_modes.items()
                },
            }
            for pe in arch.pes.values()
        },
        "links": {
            link.id: (link.link_type.name, sorted(link.attached))
            for link in arch.links.values()
        },
        "cluster_alloc": dict(arch.cluster_alloc),
        "counters": dict(arch._counters),
        "interface_cost": arch.interface_cost,
    }


def make_workload(seed):
    spec = generate_spec(GeneratorConfig(
        seed=seed, n_graphs=2, tasks_per_graph=6, compat_group_size=2,
        utilization=0.25, hw_only_fraction=0.4, mixed_fraction=0.1,
    ))
    library = default_library()
    clustering = cluster_spec(spec, library)
    return spec, library, clustering


def iter_options(spec, library, clustering, arch, config):
    for cluster in clustering.ordered_by_priority():
        options = build_allocation_array(
            cluster, arch, clustering, spec, config.delay_policy,
            max_existing_options=config.max_existing_options,
            allow_new_modes=True,
        )
        for option in options:
            yield cluster, option


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=40))
def test_apply_then_revert_is_identity(seed):
    spec, library, clustering = make_workload(seed)
    config = CrusadeConfig()
    arch = Architecture(library)
    placed = 0
    for cluster, option in iter_options(spec, library, clustering, arch, config):
        if arch.is_allocated(cluster.name):
            continue
        before = arch_state(arch)
        handle = apply_option_cow(option, arch, cluster, clustering, spec)
        assert arch_state(arch) != before  # the apply really did mutate
        handle.revert()
        assert arch_state(arch) == before
        handle.revert()  # idempotent
        assert arch_state(arch) == before
        # Grow the architecture so later options exercise existing-PE,
        # new-mode and replica paths, not just fresh PEs.
        apply_option_cow(option, arch, cluster, clustering, spec)
        placed += 1
    assert placed > 0


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=40))
def test_commit_equals_clone_apply(seed):
    spec, library, clustering = make_workload(seed)
    config = CrusadeConfig()
    cow_arch = Architecture(library)
    clone_arch = Architecture(library)
    for cluster in clustering.ordered_by_priority():
        options = build_allocation_array(
            cluster, cow_arch, clustering, spec, config.delay_policy,
            max_existing_options=config.max_existing_options,
            allow_new_modes=True,
        )
        if not options:
            continue
        option = options[0]
        apply_option_cow(option, cow_arch, cluster, clustering, spec)
        trial = clone_arch.clone()
        apply_option(option, trial, cluster, clustering, spec)
        clone_arch = trial
        assert arch_state(cow_arch) == arch_state(clone_arch)


def test_touched_pes_cover_host_and_link_ports():
    spec, library, clustering = make_workload(3)
    config = CrusadeConfig()
    arch = Architecture(library)
    for cluster in clustering.ordered_by_priority():
        options = build_allocation_array(
            cluster, arch, clustering, spec, config.delay_policy,
            max_existing_options=config.max_existing_options,
            allow_new_modes=True,
        )
        handle = apply_option_cow(options[0], arch, cluster, clustering, spec)
        touched = handle.touched_pes
        assert handle.pe.id in touched
        for entry in handle.journal:
            if entry[0] in ("attach", "new_link"):
                assert arch.links[entry[1]].attached <= touched


def test_failed_apply_rolls_back(monkeypatch):
    """An exception mid-apply leaves the architecture untouched."""
    spec, library, clustering = make_workload(1)
    config = CrusadeConfig()
    arch = Architecture(library)
    cluster = clustering.ordered_by_priority()[0]
    options = build_allocation_array(
        cluster, arch, clustering, spec, config.delay_policy,
        max_existing_options=config.max_existing_options,
        allow_new_modes=True,
    )
    before = arch_state(arch)

    import repro.alloc.evaluate as evaluate_mod

    def boom(*args, **kwargs):
        raise RuntimeError("mid-apply failure")

    monkeypatch.setattr(evaluate_mod, "_connect_cluster_edges", boom)
    with pytest.raises(RuntimeError):
        apply_option_cow(options[0], arch, cluster, clustering, spec)
    assert arch_state(arch) == before
