"""The process pool parallelizes scoring, never selection.

``parallel_eval`` counts worker *processes*: 0 and 1 both take the
serial path (a 1-worker pool can never beat it -- this suite pins
that no pool is created), >= 2 ships pickled work units to persistent
workers.  Selection stays first-feasible-by-index, so the synthesized
result is byte-identical to the serial loop.
"""

import json

import pytest

from repro import CrusadeConfig, GeneratorConfig, Tracer, crusade, generate_spec
from repro.io.result_json import result_to_dict
from repro.perf.procpool import MIN_FRONTIER_FACTOR, ProcessPoolScorer


def make_spec(seed):
    return generate_spec(GeneratorConfig(
        seed=seed, n_graphs=2, tasks_per_graph=5, compat_group_size=2,
        utilization=0.2, hw_only_fraction=0.35, mixed_fraction=0.15,
    ))


def canonical(seed, tracer=None, **config_kw):
    config = CrusadeConfig(max_explicit_copies=2, **config_kw)
    result = crusade(make_spec(seed), config=config, tracer=tracer)
    payload = result_to_dict(result)
    payload.pop("cpu_seconds", None)
    payload.pop("stats", None)
    return json.dumps(payload, sort_keys=True)


def test_single_worker_never_builds_a_pool(monkeypatch):
    """parallel_eval=1 must stay on the serial path: constructing any
    pool for it would add IPC overhead for zero parallelism."""
    import importlib

    context_mod = importlib.import_module("repro.core.stages.context")

    def boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("parallel_eval=1 must not create a pool")

    monkeypatch.setattr(context_mod, "ProcessPoolScorer", boom)
    for workers in (0, 1):
        result = crusade(
            make_spec(0),
            config=CrusadeConfig(max_explicit_copies=2, parallel_eval=workers),
        )
        assert result.feasible


def test_pool_constructor_rejects_degenerate_worker_counts():
    for workers in (-3, 0, 1):
        with pytest.raises(ValueError):
            ProcessPoolScorer(workers)


def test_pool_equals_serial_and_dispatches():
    tracer = Tracer()
    pooled = canonical(3, tracer=tracer, parallel_eval=2)
    serial = canonical(3, parallel_eval=0)
    assert pooled == serial
    counters = tracer.counters.as_dict()
    assert counters.get("pool.dispatched", 0) > 0
    assert counters.get("pool.waves", 0) > 0


def test_pool_equals_serial_with_pruning_off():
    assert canonical(5, parallel_eval=2, prune=False) == \
        canonical(5, parallel_eval=0, prune=False)


def test_socket_transport_pool_equals_serial():
    """Framed-TCP workers are a transport detail: the socket pool's
    synthesis is byte-identical to the serial (and pipe) result."""
    assert canonical(3, parallel_eval=2, exec_transport="socket") == \
        canonical(3, parallel_eval=0)


def test_pool_equals_serial_across_batch_sizes():
    """Chunked dispatch is a transport detail: any batch size yields
    the serial result, and batch=1 is the unbatched protocol."""
    serial = canonical(3, parallel_eval=0)
    for batch in (1, 3):
        assert canonical(3, parallel_eval=2, pool_batch=batch) == serial


def test_pool_equals_serial_with_bound_abort():
    """Worker-side bound aborts (seeded and rebroadcast between
    chunks) never change the selection."""
    tracer = Tracer()
    pooled = canonical(
        3, tracer=tracer, parallel_eval=2, pool_batch=4, bound_abort=True,
    )
    assert pooled == canonical(3, parallel_eval=0, bound_abort=False)
    assert tracer.counters.as_dict().get("pool.dispatched", 0) > 0


def test_pool_batch_constructor_rejects_degenerate():
    with pytest.raises(ValueError):
        ProcessPoolScorer(2, batch=0)
    from repro.errors import SpecificationError

    with pytest.raises(SpecificationError):
        CrusadeConfig(pool_batch=0)


def _direct_score_setup():
    """A one-cluster generation whose only candidates are provably
    infeasible: the smallest payload that exercises worker aborts."""
    from repro import SystemSpec, Task, TaskGraph
    from repro.arch.architecture import Architecture
    from repro.cluster.clustering import trivial_clustering
    from repro.cluster.priority import PriorityContext
    from repro.core.crusade import _compute_priorities
    from repro.delay.model import DelayPolicy
    from repro.graph.association import AssociationArray
    from repro.graph.task import MemoryRequirement
    from repro.resources.catalog import default_library
    from repro.alloc.array import build_allocation_array

    library = default_library()
    g = TaskGraph(name="late", period=0.01, deadline=1e-9)
    g.add_task(Task(
        name="only", exec_times={"MC68360": 0.0005},
        memory=MemoryRequirement(program=1024, data=512, stack=128),
    ))
    spec = SystemSpec("late", [g])
    clustering = trivial_clustering(spec, library)
    arch = Architecture(library)
    assoc = AssociationArray(spec, max_explicit_copies=2)
    cluster = clustering.ordered_by_priority()[0]
    priorities = _compute_priorities(
        spec, PriorityContext.pessimistic(library)
    )
    options = build_allocation_array(
        cluster, arch, clustering, spec, DelayPolicy()
    )
    assert options, "setup needs at least one candidate"
    payload = {
        "spec": spec, "assoc": assoc, "clustering": clustering,
        "arch": arch, "cluster": cluster, "priorities": priorities,
        "preemption": True, "fast": False, "prune": False,
        "bound_abort": True,
    }
    return payload, options


@pytest.mark.parametrize("transport", ["pipe", "socket"])
def test_fresh_and_stale_bounds_agree_on_decisions(transport):
    """A tight (fresh) bound turns completed infeasible verdicts into
    aborts; a loose (stale) bound aborts nothing -- but both runs see
    the same candidates in the same order, and an abort only ever
    replaces an infeasible verdict (never a feasible one).  True over
    either transport: bounds are advisory, selection is index-ordered."""
    payload, options = _direct_score_setup()
    with ProcessPoolScorer(2, batch=2, transport=transport) as scorer:
        token = scorer.begin_cluster(payload)
        stale = scorer.score(
            token, options, "cheapest", Tracer(), bound=(10 ** 9, 0.0, 0.0),
        )
        token = scorer.begin_cluster(payload)
        unbounded = scorer.score(token, options, "cheapest", Tracer())
        token = scorer.begin_cluster(payload)
        fresh_tracer = Tracer()
        fresh = scorer.score(
            token, options, "cheapest", fresh_tracer, bound=(0, 0.0, 0.0),
        )
    # A stale (loose) bound is a no-op: identical records.
    assert stale == unbounded
    assert all(kind == "infeasible" for kind, _, _, _ in unbounded)
    # A fresh (tight) bound aborts exactly the infeasible evaluations.
    assert len(fresh) == len(unbounded)
    assert all(kind == "aborted" for kind, _, _, _ in fresh)
    assert all(reason for _, _, _, reason in fresh)
    assert fresh_tracer.counters.as_dict().get("pool.bound_broadcasts", 0) > 0


def test_small_frontiers_skip_ipc():
    scorer = ProcessPoolScorer(4)
    try:
        assert not scorer.worth_pool(4 * MIN_FRONTIER_FACTOR - 1)
        assert scorer.worth_pool(4 * MIN_FRONTIER_FACTOR)
        # worth_pool is a pure predicate: no workers started by it.
        assert not scorer.started
    finally:
        scorer.close()


def test_scorer_context_manager_closes_workers():
    """Leaving the with block shuts every worker down, so the
    allocation stage cannot leak processes past its lifetime."""
    with ProcessPoolScorer(2) as scorer:
        token = scorer.begin_cluster({"probe": True})
        assert token == 1
        # Force the lazy spawn so exit has something real to close.
        scorer._ensure_started()
        procs = [t._proc for t in scorer._transports]
        assert procs and all(p.is_alive() for p in procs)
    assert not scorer.started
    assert all(not p.is_alive() for p in procs)


def test_scorer_context_manager_closes_on_error():
    """Workers are shut down even when the body raises -- the
    hand-rolled try/finally this replaced guaranteed no less."""
    with pytest.raises(RuntimeError, match="stage exploded"):
        with ProcessPoolScorer(2) as scorer:
            scorer._ensure_started()
            procs = [t._proc for t in scorer._transports]
            raise RuntimeError("stage exploded")
    assert all(not p.is_alive() for p in procs)


def test_scorer_context_manager_idle_exit_is_cheap():
    """A scorer that never scored anything exits without ever having
    spawned a process."""
    with ProcessPoolScorer(3) as scorer:
        assert not scorer.started
    assert not scorer.started


def test_context_releases_scorer_reference():
    """SynthesisContext.allocation_scorer tracks the live scorer and
    clears it on release, pool or no pool."""
    from repro.core.stages.context import SynthesisContext

    ctx = SynthesisContext.begin(
        make_spec(0), config=CrusadeConfig(parallel_eval=2)
    )
    with ctx.allocation_scorer() as scorer:
        assert scorer is not None and ctx.scorer is scorer
    assert ctx.scorer is None
    serial_ctx = SynthesisContext.begin(
        make_spec(0), config=CrusadeConfig(parallel_eval=0)
    )
    with serial_ctx.allocation_scorer() as scorer:
        assert scorer is None
    assert serial_ctx.scorer is None


def test_parallel_eval_auto_resolves_cpu_count():
    import os

    from repro.cli import _parallel_eval_arg

    assert _parallel_eval_arg("auto") == (os.cpu_count() or 1)
    assert _parallel_eval_arg("3") == 3
    import argparse

    with pytest.raises(argparse.ArgumentTypeError):
        _parallel_eval_arg("many")


# The SIGTERM -> SIGKILL escalation suite lives with its single
# implementation now: tests/exec/test_transport.py exercises
# repro.exec.transport.terminate_process, which every layer's kill
# (including JobWorker's) delegates to.
