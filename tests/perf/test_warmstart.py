"""Differential identity suite for warm-start synthesis.

The store's contract, in the style of the scheduler oracle
(``tests/sched/oracle.py``): a warm-started run must be *byte-identical*
to a cold run of the same request -- same architecture, same schedule,
same verdicts -- under :func:`repro.io.result_json.canonical_result_json`
(which strips only wall-clock time and the stats block, the two
legitimately run-varying fields).  Every scenario here runs the cold
oracle and the warm candidate and compares canonical bytes:

* exact resubmission (full-result tier hit),
* resubmission with one tweaked deadline (fragment-tier warm start),
* kill-switched runs (``warm_start=False`` / ``REPRO_NO_WARM_START``),
* a store with every entry corrupted,
* nested reconfiguration runs sharing the parent engine's binding.
"""

from __future__ import annotations

import pytest

from repro.core.config import CrusadeConfig
from repro.core.crusade import crusade
from repro.graph.generator import GeneratorConfig, generate_spec
from repro.io.result_json import canonical_result_json
from repro.obs import Tracer
from repro.perf.store import SynthesisStore
from repro.perf.store.disk import KILL_SWITCH_ENV
from repro.perf.warmstart import diff_against_prior, tweak_deadline
from repro.resources.catalog import default_library


def _spec(seed: int = 23, n_graphs: int = 3, tasks_per_graph: int = 6):
    return generate_spec(
        GeneratorConfig(
            seed=seed, n_graphs=n_graphs, tasks_per_graph=tasks_per_graph
        )
    )


def _cold(spec, **config_kwargs):
    """The oracle: a storeless run of the same request."""
    return crusade(spec, config=CrusadeConfig(**config_kwargs))


@pytest.fixture
def no_env_kill(monkeypatch):
    """Neutralize ambient kill switches for the identity scenarios."""
    monkeypatch.delenv(KILL_SWITCH_ENV, raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


pytestmark = pytest.mark.usefixtures("no_env_kill")


# ----------------------------------------------------------------------
# full-result tier
# ----------------------------------------------------------------------
class TestExactHit:
    """Identical resubmission returns the cached result, identically."""

    def test_hit_is_identical_and_counted(self, tmp_path):
        spec = _spec()
        cold = _cold(spec)
        config = CrusadeConfig(cache_dir=str(tmp_path))

        tracer = Tracer()
        warming = crusade(spec, config=config, tracer=tracer)
        assert tracer.counters.get("perf.store.hit") == 0
        assert tracer.counters.get("perf.store.miss") == 1
        assert tracer.counters.get("perf.store.results_saved") == 1
        assert canonical_result_json(warming) == canonical_result_json(cold)

        tracer = Tracer()
        hit = crusade(spec, config=config, tracer=tracer)
        assert tracer.counters.get("perf.store.hit") == 1
        assert canonical_result_json(hit) == canonical_result_json(cold)

    def test_hit_carries_fresh_wall_time_and_stats(self, tmp_path):
        spec = _spec()
        config = CrusadeConfig(cache_dir=str(tmp_path))
        crusade(spec, config=config)

        tracer = Tracer()
        hit = crusade(spec, config=config, tracer=tracer)
        # The cached result must not replay the warming run's timing
        # or stats: cpu_seconds is the hit's own latency and the stats
        # block reflects this (trivial) run.
        assert hit.cpu_seconds < 1.0
        assert hit.stats is not None
        assert hit.stats.counters.get("perf.store.hit") == 1
        # An untraced hit carries no stale stats either.
        untraced = crusade(spec, config=config)
        assert untraced.stats is None

    def test_semantic_config_change_misses(self, tmp_path):
        spec = _spec()
        config = CrusadeConfig(cache_dir=str(tmp_path))
        crusade(spec, config=config)
        tracer = Tracer()
        crusade(
            spec,
            config=CrusadeConfig(
                cache_dir=str(tmp_path), reconfiguration=False
            ),
            tracer=tracer,
        )
        assert tracer.counters.get("perf.store.hit") == 0
        assert tracer.counters.get("perf.store.miss") == 1

    def test_identity_neutral_config_change_still_hits(self, tmp_path):
        spec = _spec()
        crusade(spec, config=CrusadeConfig(cache_dir=str(tmp_path)))
        tracer = Tracer()
        hit = crusade(
            spec,
            config=CrusadeConfig(
                cache_dir=str(tmp_path), incremental=False, prune=False
            ),
            tracer=tracer,
        )
        assert tracer.counters.get("perf.store.hit") == 1
        assert canonical_result_json(hit) == canonical_result_json(_cold(spec))

    def test_donated_inputs_bypass_result_tier(self, tmp_path):
        spec = _spec()
        config = CrusadeConfig(cache_dir=str(tmp_path))
        first = crusade(spec, config=config)
        tracer = Tracer()
        donated = crusade(
            spec, config=config, clustering=first.clustering, tracer=tracer
        )
        # Neither a hit nor a miss: the tier never engaged.
        assert tracer.counters.get("perf.store.hit") == 0
        assert tracer.counters.get("perf.store.miss") == 0
        assert canonical_result_json(donated) == canonical_result_json(first)


# ----------------------------------------------------------------------
# fragment tier: warm start after a spec change
# ----------------------------------------------------------------------
class TestWarmStart:
    """A tweaked resubmission reuses fragments, byte-identically."""

    def test_tweaked_deadline_warm_equals_cold(self, tmp_path):
        spec = _spec()
        config = CrusadeConfig(cache_dir=str(tmp_path))
        crusade(spec, config=config)  # populate

        tweaked = tweak_deadline(spec)
        cold = _cold(tweaked)
        tracer = Tracer()
        warm = crusade(tweaked, config=config, tracer=tracer)
        assert canonical_result_json(warm) == canonical_result_json(cold)
        assert tracer.counters.get("perf.store.miss") == 1  # not an exact hit
        assert tracer.counters.get("perf.store.graphs_unchanged") >= 1
        assert tracer.counters.get("perf.store.graphs_changed") == 1

    def test_fragments_are_reused_across_runs(self, tmp_path):
        spec = _spec()
        config = CrusadeConfig(cache_dir=str(tmp_path))
        first = crusade(spec, config=config)

        # Donating the clustering bypasses the full-result tier, so the
        # engine actually replays the decisions -- and must pull its
        # fragments from disk instead of rebuilding them.
        tracer = Tracer()
        replay = crusade(
            spec, config=config, clustering=first.clustering, tracer=tracer
        )
        assert tracer.counters.get("perf.store.fragments_preloaded") > 0
        assert canonical_result_json(replay) == canonical_result_json(first)
        # Disk hits surface in the engine gauges too.
        assert replay.stats.counters.get("perf.cache.disk_hits") == \
            tracer.counters.get("perf.store.fragments_preloaded")

    def test_disk_hits_never_count_as_scheduler_misses(self, tmp_path):
        spec = _spec()
        config = CrusadeConfig(cache_dir=str(tmp_path))
        first = crusade(spec, config=config)
        tracer = Tracer()
        crusade(
            spec, config=config, clustering=first.clustering, tracer=tracer
        )
        # The documented invariant survives the store: every scheduler
        # run builds exactly one fragment -- disk hits are hits.
        assert tracer.counters.get("sched.runs") == \
            tracer.counters.get("perf.schedule.misses")


# ----------------------------------------------------------------------
# kill switches
# ----------------------------------------------------------------------
class TestKillSwitches:
    """Reads can be disabled; writes and identity are unaffected."""

    def test_config_kill_switch_blocks_reads_not_writes(self, tmp_path):
        spec = _spec()
        writer = CrusadeConfig(cache_dir=str(tmp_path))
        crusade(spec, config=writer)

        killed = CrusadeConfig(cache_dir=str(tmp_path), warm_start=False)
        tracer = Tracer()
        result = crusade(spec, config=killed, tracer=tracer)
        assert tracer.counters.get("perf.store.hit") == 0
        assert tracer.counters.get("perf.store.fragments_preloaded") == 0
        # ... but the run still warmed the store (writes always on).
        assert tracer.counters.get("perf.store.results_saved") == 1
        assert canonical_result_json(result) == canonical_result_json(
            _cold(spec)
        )

    def test_env_kill_switch(self, tmp_path, monkeypatch):
        spec = _spec()
        config = CrusadeConfig(cache_dir=str(tmp_path))
        crusade(spec, config=config)

        monkeypatch.setenv(KILL_SWITCH_ENV, "1")
        tracer = Tracer()
        result = crusade(spec, config=config, tracer=tracer)
        assert tracer.counters.get("perf.store.hit") == 0
        assert canonical_result_json(result) == canonical_result_json(
            _cold(spec)
        )


# ----------------------------------------------------------------------
# fault tolerance end-to-end
# ----------------------------------------------------------------------
class TestCorruptStore:
    """A vandalized store degrades to cold-run behavior, identically."""

    def test_all_entries_corrupted_still_identical(self, tmp_path):
        spec = _spec()
        config = CrusadeConfig(cache_dir=str(tmp_path))
        crusade(spec, config=config)

        for path in tmp_path.rglob("*.pkl"):
            path.write_bytes(b"\x80\x04 vandalized")

        tracer = Tracer()
        result = crusade(spec, config=config, tracer=tracer)
        assert tracer.counters.get("perf.store.corrupt") >= 1
        assert tracer.counters.get("perf.store.hit") == 0
        assert canonical_result_json(result) == canonical_result_json(
            _cold(spec)
        )
        # The rerun healed the store: the next resubmission hits.
        tracer = Tracer()
        crusade(spec, config=config, tracer=tracer)
        assert tracer.counters.get("perf.store.hit") == 1


# ----------------------------------------------------------------------
# the spec diff
# ----------------------------------------------------------------------
class TestSpecDiff:
    """``diff_against_prior`` classifies a resubmission correctly."""

    def test_no_prior(self, tmp_path):
        store = SynthesisStore(tmp_path)
        diff = diff_against_prior(
            store, _spec(), default_library(), CrusadeConfig()
        )
        assert not diff.prior_found
        assert not diff.exact

    def test_exact_resubmission(self, tmp_path):
        spec = _spec()
        config = CrusadeConfig(cache_dir=str(tmp_path))
        crusade(spec, config=config)
        diff = diff_against_prior(
            SynthesisStore(tmp_path), spec, default_library(), config
        )
        assert diff.prior_found
        assert diff.exact
        assert diff.changed == []
        assert len(diff.unchanged) == len(spec.graphs)

    def test_tweaked_resubmission(self, tmp_path):
        spec = _spec()
        config = CrusadeConfig(cache_dir=str(tmp_path))
        crusade(spec, config=config)
        diff = diff_against_prior(
            SynthesisStore(tmp_path), tweak_deadline(spec),
            default_library(), config,
        )
        assert diff.prior_found
        assert not diff.exact
        assert len(diff.changed) == 1
        assert not diff.catalog_changed
        assert not diff.config_changed

    def test_config_change_flagged(self, tmp_path):
        spec = _spec()
        config = CrusadeConfig(cache_dir=str(tmp_path))
        crusade(spec, config=config)
        diff = diff_against_prior(
            SynthesisStore(tmp_path), spec, default_library(),
            CrusadeConfig(max_explicit_copies=2),
        )
        assert diff.prior_found
        assert diff.config_changed
        assert not diff.exact

    def test_tweak_deadline_round_trips(self):
        spec = _spec()
        tweaked = tweak_deadline(spec, factor=1.25)
        assert tweaked is not spec
        assert tweaked.name == spec.name
        assert len(tweaked.graphs) == len(spec.graphs)
        # Exactly one deadline differs, by the requested factor.
        diffs = [
            (name, spec.graphs[name].deadline, tweaked.graphs[name].deadline)
            for name in spec.graphs
            if spec.graphs[name].deadline != tweaked.graphs[name].deadline
        ]
        assert len(diffs) == 1
        _, before, after = diffs[0]
        assert after == pytest.approx(before * 1.25)


# ----------------------------------------------------------------------
# reconfiguration: the nested baseline shares the binding
# ----------------------------------------------------------------------
class TestReconfiguration:
    """Warm start stays identical through the mode-merge routes."""

    def test_reconfig_warm_equals_cold(self, tmp_path):
        spec = _spec(seed=31)
        config = CrusadeConfig(cache_dir=str(tmp_path))
        crusade(spec, config=config)

        tweaked = tweak_deadline(spec, factor=0.97)
        cold = _cold(tweaked)
        warm = crusade(tweaked, config=config)
        assert canonical_result_json(warm) == canonical_result_json(cold)
