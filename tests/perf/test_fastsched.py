"""The engine's fast scheduling path against the legacy scheduler.

Two layers of defense beyond the end-to-end equivalence suite:

* :class:`repro.perf.fasttimeline.FastTimeline` is fuzzed operation-
  by-operation against :class:`repro.sched.timeline.IntervalTimeline`
  -- same placements, same intervals, same split decisions;
* :func:`repro.sched.scheduler.build_schedule` with a
  :class:`repro.perf.fastsched.SchedulerContext` attached must emit
  the exact schedule the legacy loop produces, on synthesized
  workloads whose architectures exercise processors, links, and
  programmable devices.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import CrusadeConfig, GeneratorConfig, Tracer, crusade, generate_spec
from repro.cluster.clustering import cluster_spec
from repro.core.crusade import _allocation_aware_context, _compute_priorities
from repro.errors import SchedulingError
from repro.graph.association import AssociationArray
from repro.resources.catalog import default_library
from repro.sched.scheduler import ScheduleRequest, build_schedule
from repro.sched.timeline import IntervalTimeline, PpeModeTimeline
from repro.perf.fastsched import SchedulerContext
from repro.perf.fasttimeline import FastPpeModeTimeline, FastTimeline

TIMELINE_SETTINGS = settings(max_examples=200, deadline=None, derandomize=True)

#: (ready, duration) pools spanning equal values, adjacency, and gaps.
_times = st.floats(
    min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
_durations = st.floats(
    min_value=0.001, max_value=10.0, allow_nan=False, allow_infinity=False
)


@TIMELINE_SETTINGS
@given(ops=st.lists(st.tuples(_times, _durations), min_size=1, max_size=40))
def test_fast_timeline_matches_linear_placements(ops):
    legacy = IntervalTimeline()
    fast = FastTimeline()
    for i, (ready, duration) in enumerate(ops):
        want_start = legacy.earliest_fit(ready, duration)
        got_start = fast.earliest_fit(ready, duration)
        assert got_start == want_start
        want = legacy.occupy(want_start, duration, ("op", i))
        got = fast.occupy(got_start, duration, ("op", i))
        assert got == want
    assert [(iv.start, iv.end, iv.owner) for iv in fast.intervals] == [
        (iv.start, iv.end, iv.owner) for iv in legacy.intervals
    ]


@TIMELINE_SETTINGS
@given(
    ops=st.lists(st.tuples(_times, _durations), min_size=1, max_size=20),
    ready=_times,
    duration=_durations,
    overhead=st.floats(min_value=0.0, max_value=1.0),
)
def test_fast_timeline_matches_linear_split_fit(ops, ready, duration, overhead):
    legacy = IntervalTimeline()
    fast = FastTimeline()
    for i, (r, d) in enumerate(ops):
        start = legacy.earliest_fit(r, d)
        legacy.occupy(start, d, ("op", i))
        fast.occupy(fast.earliest_fit(r, d), d, ("op", i))
    assert fast.split_fit(ready, duration, overhead) == legacy.split_fit(
        ready, duration, overhead
    )


def test_fast_timeline_rejects_collisions():
    fast = FastTimeline()
    fast.occupy(1.0, 2.0, ("a",))
    with pytest.raises(SchedulingError):
        fast.occupy(2.0, 2.0, ("b",))
    # Boundary placement is fine (shared endpoint).
    fast.occupy(3.0, 1.0, ("c",))


def test_fast_timeline_degrades_on_end_disorder():
    """A sliver landing inside a longer interval's span breaks the
    end-sorted invariant; the timeline must notice and keep answering
    through the linear algorithms."""
    fast = FastTimeline()
    legacy = IntervalTimeline()
    for tl in (fast, legacy):
        tl.occupy(10.0, 40.0, ("long",))
        # Bypass earliest_fit: force a zero-duration sliver inside the
        # epsilon window at the long interval's start.
        tl._insert(type(tl._intervals[0])(10.0 + 1e-13, 10.0 + 1e-13, ("sliver",)))
    assert fast._degraded
    for ready in (0.0, 5.0, 10.0, 25.0, 50.0, 60.0):
        assert fast.earliest_fit(ready, 3.0) == legacy.earliest_fit(ready, 3.0)


# ----------------------------------------------------------------------
_modes = st.integers(min_value=0, max_value=3)
_ppe_durations = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
_boots = st.floats(
    min_value=0.0, max_value=2.0, allow_nan=False, allow_infinity=False
)


def _windows_dump(timeline):
    return [(w.mode, w.start, w.end, w.boot_time) for w in timeline.windows]


@TIMELINE_SETTINGS
@given(
    ops=st.lists(
        st.tuples(_modes, _times, _ppe_durations, _boots, st.sets(_modes, max_size=4)),
        min_size=1,
        max_size=30,
    )
)
def test_fast_ppe_timeline_matches_linear(ops):
    legacy = PpeModeTimeline()
    fast = FastPpeModeTimeline()
    for mode, ready, duration, boot, extra in ops:
        if extra:
            allowed = {m: boot + m * 0.125 for m in sorted(extra | {mode})}
            want = legacy.place(mode, ready, duration, boot, dict(allowed))
            got = fast.place(mode, ready, duration, boot, dict(allowed))
        else:
            want = legacy.place(mode, ready, duration, boot)
            got = fast.place(mode, ready, duration, boot)
        assert got == want
    assert _windows_dump(fast) == _windows_dump(legacy)


def test_fast_ppe_timeline_degrades_on_window_disorder():
    """A zero-duration insert whose boot pushes it past the next
    window's start (inside the epsilon slack) breaks the start-sorted
    invariant; the timeline must notice and keep answering through the
    linear algorithm."""
    fast = FastPpeModeTimeline()
    legacy = PpeModeTimeline()
    for tl in (fast, legacy):
        tl.place(0, 0.0, 1.0, 0.0)
        tl.place(1, 1.0 + 1e-13, 1.0, 0.0)
        tl.place(2, 1.0, 0.0, 3e-13)
    assert fast._degraded
    assert _windows_dump(fast) == _windows_dump(legacy)
    for tl in (fast, legacy):
        tl.place(0, 0.5, 2.0, 0.25, {0: 0.25, 1: 0.5})
    assert _windows_dump(fast) == _windows_dump(legacy)


def _workload(seed):
    spec = generate_spec(GeneratorConfig(
        seed=seed, n_graphs=3, tasks_per_graph=6, compat_group_size=2,
        utilization=0.25, hw_only_fraction=0.35, mixed_fraction=0.15,
    ))
    library = default_library()
    result = crusade(spec, library=library,
                     config=CrusadeConfig(max_explicit_copies=2))
    assoc = AssociationArray(spec, max_explicit_copies=2)
    context = _allocation_aware_context(library, result.arch, result.clustering)
    priorities = _compute_priorities(spec, context)
    return spec, assoc, result.clustering, result.arch, priorities


def _schedule_dump(schedule):
    return (
        {k: (t.pe_id, t.mode, t.start, t.finish, t.preempted)
         for k, t in schedule.tasks.items()},
        {k: (e.link_id, e.start, e.finish) for k, e in schedule.edges.items()},
        {pid: [(iv.start, iv.end, iv.owner) for iv in tl.intervals]
         for pid, tl in schedule.proc_timelines.items()},
        {lid: [(iv.start, iv.end, iv.owner) for iv in tl.intervals]
         for lid, tl in schedule.link_timelines.items()},
        {pid: [(w.mode, w.start, w.end, w.boot_time) for w in tl.windows]
         for pid, tl in schedule.ppe_timelines.items()},
        schedule.preemptions,
    )


@pytest.mark.parametrize("seed", [1, 5, 9, 23])
def test_planned_schedule_is_byte_identical(seed):
    spec, assoc, clustering, arch, priorities = _workload(seed)
    base = dict(
        spec=spec, assoc=assoc, clustering=clustering, arch=arch,
        priorities=priorities,
    )
    legacy = build_schedule(ScheduleRequest(**base))
    context = SchedulerContext()
    tracer = Tracer()
    planned = build_schedule(
        ScheduleRequest(tracer=tracer, context=context, **base)
    )
    assert _schedule_dump(planned) == _schedule_dump(legacy)
    # Same request again: the plan is reused, the output unchanged.
    replay = build_schedule(ScheduleRequest(tracer=tracer, context=context, **base))
    assert _schedule_dump(replay) == _schedule_dump(legacy)
    counters = tracer.counters.as_dict()
    assert counters["perf.plan.misses"] == 1
    assert counters["perf.plan.hits"] == 1


def test_route_cache_tracks_topology_version(seed=5):
    spec, assoc, clustering, arch, priorities = _workload(seed)
    context = SchedulerContext()
    pes = sorted(arch.pes)
    if len(pes) < 2:
        pytest.skip("workload produced a single-PE architecture")
    a, b = pes[0], pes[1]
    before = arch.topo_version
    assert context.route(arch, a, b) is arch.find_link_between(a, b)
    # A fresh link between the pair must invalidate the memo.
    link_type = arch.library.links_by_cost()[0]
    arch.connect(a, b, link_type)
    assert arch.topo_version > before
    assert context.route(arch, a, b) is arch.find_link_between(a, b)
