"""The incremental engine is an optimization, not a semantics change.

Property suite fuzzing generated workloads: the synthesized result --
architecture, schedule, deadline report, costs -- must be byte
identical with the engine on, off, killed via the environment, and
under parallel candidate scoring; the decision counters (which options
were considered/rejected) must match exactly between the
copy-on-write and the clone-based inner loops.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CrusadeConfig, GeneratorConfig, Tracer, crusade, generate_spec
from repro.io.result_json import result_to_dict

PROPERTY_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Counters that must not depend on the evaluation strategy: they
#: record the allocation loop's *decisions*, not its bookkeeping.
DECISION_COUNTERS = (
    "alloc.clusters",
    "alloc.clusters.fallback",
    "alloc.options.considered",
    "alloc.options.apply_failed",
    "alloc.options.infeasible",
    "alloc.evaluations",
    "repair.rounds",
    "repair.rehomings_tried",
    "repair.rehomings_kept",
    "merge.candidates",
    "merge.accepts",
)


def make_spec(seed):
    return generate_spec(GeneratorConfig(
        seed=seed, n_graphs=2, tasks_per_graph=5, compat_group_size=2,
        utilization=0.2, hw_only_fraction=0.35, mixed_fraction=0.15,
    ))


def canonical(seed, tracer=None, **config_kw):
    config = CrusadeConfig(max_explicit_copies=2, **config_kw)
    result = crusade(make_spec(seed), config=config, tracer=tracer)
    payload = result_to_dict(result)
    payload.pop("cpu_seconds", None)
    payload.pop("stats", None)
    return json.dumps(payload, sort_keys=True)


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=60), reconfig=st.booleans())
def test_incremental_equals_from_scratch(seed, reconfig):
    scratch = canonical(seed, reconfiguration=reconfig, incremental=False)
    incremental = canonical(seed, reconfiguration=reconfig, incremental=True)
    assert scratch == incremental


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=60))
def test_parallel_scoring_equals_serial(seed):
    serial = canonical(seed, incremental=True, parallel_eval=0)
    parallel = canonical(seed, incremental=True, parallel_eval=2)
    assert serial == parallel


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=60))
def test_traced_incremental_equals_untraced(seed):
    untraced = canonical(seed, incremental=True)
    traced = canonical(seed, tracer=Tracer(), incremental=True)
    assert untraced == traced


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=30))
def test_env_kill_switch_equals_enabled(seed):
    import os

    enabled = canonical(seed, incremental=True)
    os.environ["REPRO_NO_INCREMENTAL"] = "1"
    try:
        killed = canonical(seed, incremental=True)
    finally:
        del os.environ["REPRO_NO_INCREMENTAL"]
    assert enabled == killed


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=60), reconfig=st.booleans())
def test_decision_counters_match_from_scratch(seed, reconfig):
    """COW + fragment caching change *what is computed*, never *what is
    decided*: every option-level decision counter matches exactly."""

    def counters(incremental):
        tracer = Tracer()
        config = CrusadeConfig(
            reconfiguration=reconfig, max_explicit_copies=2,
            incremental=incremental,
        )
        result = crusade(make_spec(seed), config=config, tracer=tracer)
        return result.stats

    scratch = counters(False)
    incremental = counters(True)
    for name in DECISION_COUNTERS:
        assert scratch.counter(name) == incremental.counter(name), name
    # Every engine scheduler run is a fragment-cache miss (one run per
    # component, vs one per evaluation from scratch -- so the counts
    # are not comparable across modes, but this equality is exact).
    assert incremental.counter("sched.runs") == \
        incremental.counter("perf.schedule.misses")
    # COW bookkeeping balances: every apply is committed or reverted.
    applies = incremental.counter("perf.cow.applies")
    assert applies > 0
    assert applies == incremental.counter("perf.cow.commits") + \
        incremental.counter("perf.cow.reverts")


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=30))
def test_incremental_priorities_are_exact(seed):
    """Reused priority maps equal full recomputation: synthesis
    decisions (which depend on priority order) already pin this down,
    but the counters prove reuse actually happened."""
    tracer = Tracer()
    config = CrusadeConfig(max_explicit_copies=2, incremental=True)
    result = crusade(make_spec(seed), config=config, tracer=tracer)
    stats = result.stats
    recomputed = stats.counter("perf.priorities.recomputed")
    reused = stats.counter("perf.priorities.reused")
    assert recomputed > 0
    # Two graphs sharing nothing: most placements touch one graph only.
    assert recomputed + reused > 0
