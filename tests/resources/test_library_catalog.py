"""Resource library registry and the 1997 default catalog."""

import pytest

from repro import ResourceLibraryError, default_library
from repro.resources.catalog import (
    DRAM_BANKS,
    asic_names,
    ppe_names,
    processor_names,
)
from repro.resources.library import ResourceLibrary
from repro.resources.pe import PEKind, PpeType, ProcessorType
from repro.units import MB


class TestLibraryRegistry:
    def test_duplicate_pe_rejected(self, small_library):
        with pytest.raises(ResourceLibraryError):
            small_library.add_pe_type(small_library.pe_type("CPU"))

    def test_duplicate_link_rejected(self, small_library):
        with pytest.raises(ResourceLibraryError):
            small_library.add_link_type(small_library.link_type("bus"))

    def test_unknown_lookup(self, small_library):
        with pytest.raises(ResourceLibraryError):
            small_library.pe_type("nope")
        with pytest.raises(ResourceLibraryError):
            small_library.link_type("nope")

    def test_has_pe_type(self, small_library):
        assert small_library.has_pe_type("CPU")
        assert not small_library.has_pe_type("nope")

    def test_empty_library_fails_validation(self):
        with pytest.raises(ResourceLibraryError):
            ResourceLibrary().validate()

    def test_cost_ordering(self, library):
        costs = [p.cost for p in library.all_pe_types_by_cost()]
        assert costs == sorted(costs)
        link_costs = [l.cost for l in library.links_by_cost()]
        assert link_costs == sorted(link_costs)


class TestCatalogContents:
    """Section 7 lists the experimental PE/link library; verify the
    reconstruction carries every named part."""

    def test_processors_with_cache_variants(self, library):
        for base in ("MC68360", "MC68040", "MC68060", "PowerQUICC"):
            assert library.has_pe_type(base)
            assert library.has_pe_type(base + "+L2")

    def test_cache_variant_is_faster_and_costlier(self, library):
        plain = library.pe_type("MC68040")
        cached = library.pe_type("MC68040+L2")
        assert cached.speed > plain.speed
        assert cached.cost > plain.cost
        assert cached.cache_bytes > 0

    def test_sixteen_asics(self, library):
        assert len(library.asics()) == 16
        assert asic_names() == [a.name for a in sorted(library.asics(), key=lambda a: a.gates)]

    def test_named_fpgas_and_cplds(self, library):
        for name in ("XC3195A", "XC4025", "XC6700", "AT6005", "AT6010",
                     "XC9536", "XC95108", "XC7336", "XC7372",
                     "ORCA2T15", "ORCA2T40"):
            assert library.has_pe_type(name), name

    def test_partial_reconfig_devices(self, library):
        # ATMEL AT6000 series and the XC6200-class part support partial
        # reconfiguration; mainstream XC3000/4000/ORCA do not.
        for name in ("AT6005", "AT6010", "XC6700"):
            assert library.pe_type(name).partial_reconfig
        for name in ("XC3195A", "XC4025", "ORCA2T15", "ORCA2T40"):
            assert not library.pe_type(name).partial_reconfig

    def test_cplds_are_cplds(self, library):
        for name in ("XC9536", "XC95108", "XC7336", "XC7372"):
            assert library.pe_type(name).kind is PEKind.CPLD

    def test_four_dram_banks_up_to_64mb(self, library):
        assert len(DRAM_BANKS) == 4
        assert DRAM_BANKS[-1].size_bytes == 64 * MB
        for processor in library.processors():
            assert processor.memory_banks == DRAM_BANKS

    def test_link_library(self, library):
        for name in ("bus680X0", "busQUICC", "lan10", "serial31"):
            assert library.link_type(name) is not None
        assert library.link_type("serial31").max_ports == 2
        assert library.link_type("lan10").max_ports == 32

    def test_helper_name_lists(self):
        assert len(processor_names()) == 8
        assert len(processor_names(with_cache_variants=False)) == 4
        assert len(ppe_names()) == 11

    def test_fresh_instance_each_call(self):
        a, b = default_library(), default_library()
        assert a is not b
        a.add_pe_type(ProcessorType(name="extra", cost=1.0))
        assert not b.has_pe_type("extra")
