"""Link types: communication vectors and access-time semantics."""

import pytest
from hypothesis import given, strategies as st

from repro import ResourceLibraryError
from repro.resources.link import LinkType


def link(**overrides):
    fields = dict(
        name="bus",
        cost=5.0,
        max_ports=4,
        access_times=(1e-6, 2e-6, 3e-6, 4e-6),
        bytes_per_packet=64,
        packet_tx_time=2e-6,
        cost_per_port=1.0,
    )
    fields.update(overrides)
    return LinkType(**fields)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(name=""),
        dict(cost=-1.0),
        dict(max_ports=1),
        dict(access_times=(1e-6,)),  # wrong length
        dict(access_times=(4e-6, 3e-6, 2e-6, 1e-6)),  # decreasing
        dict(access_times=(-1e-6, 1e-6, 1e-6, 1e-6)),
        dict(bytes_per_packet=0),
        dict(packet_tx_time=0.0),
        dict(assumed_ports=1),
        dict(assumed_ports=9),
    ])
    def test_rejects(self, kwargs):
        with pytest.raises(ResourceLibraryError):
            link(**kwargs)


class TestCommTime:
    def test_zero_bytes_is_free(self):
        assert link().comm_time(0) == 0.0

    def test_single_packet(self):
        l = link()
        assert l.comm_time(64, ports=2) == pytest.approx(2e-6 + 2e-6)

    def test_multiple_packets_ceil(self):
        l = link()
        assert l.packets_for(65) == 2
        assert l.comm_time(65, ports=2) == pytest.approx(2e-6 + 2 * 2e-6)

    def test_default_uses_assumed_ports(self):
        l = link(assumed_ports=3)
        assert l.comm_time(64) == pytest.approx(l.comm_time(64, ports=3))

    def test_ports_beyond_max_clamp(self):
        l = link()
        assert l.access_time(99) == l.access_time(4)

    def test_more_ports_never_faster(self):
        l = link()
        assert l.comm_time(64, ports=4) >= l.comm_time(64, ports=2)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ResourceLibraryError):
            link().packets_for(-1)


class TestCost:
    def test_instance_cost(self):
        l = link()
        assert l.instance_cost(3) == pytest.approx(5.0 + 3.0)

    def test_requires_a_port(self):
        with pytest.raises(ResourceLibraryError):
            link().instance_cost(0)

    def test_bandwidth(self):
        l = link()
        assert l.bandwidth_bytes_per_s == pytest.approx(64 / 2e-6)


@given(
    bytes_=st.integers(min_value=1, max_value=100_000),
    ports=st.integers(min_value=1, max_value=8),
)
def test_comm_time_monotone_in_bytes(bytes_, ports):
    l = link()
    assert l.comm_time(bytes_ + 64, ports) >= l.comm_time(bytes_, ports)
