"""PE types: processors, ASICs, programmable PEs."""

import pytest

from repro import ResourceLibraryError
from repro.resources.pe import (
    AsicType,
    MemoryBank,
    PEKind,
    PpeType,
    ProcessorType,
)
from repro.units import GATES_PER_PFU, MB


def processor(**overrides):
    fields = dict(
        name="P",
        cost=50.0,
        speed=1.0,
        memory_banks=(MemoryBank(16 * MB, 20.0), MemoryBank(64 * MB, 60.0)),
    )
    fields.update(overrides)
    return ProcessorType(**fields)


def fpga(**overrides):
    fields = dict(
        name="F",
        cost=100.0,
        device_kind=PEKind.FPGA,
        pfus=100,
        flip_flops=100,
        pins=50,
        config_bits_per_pfu=200,
    )
    fields.update(overrides)
    return PpeType(**fields)


class TestPEKind:
    def test_programmable(self):
        assert PEKind.FPGA.is_programmable
        assert PEKind.CPLD.is_programmable
        assert not PEKind.ASIC.is_programmable
        assert not PEKind.PROCESSOR.is_programmable

    def test_hardware(self):
        assert PEKind.ASIC.is_hardware
        assert PEKind.FPGA.is_hardware
        assert not PEKind.PROCESSOR.is_hardware


class TestMemoryBank:
    def test_rejects_invalid(self):
        with pytest.raises(ResourceLibraryError):
            MemoryBank(size_bytes=0, cost=1.0)
        with pytest.raises(ResourceLibraryError):
            MemoryBank(size_bytes=100, cost=-1.0)


class TestProcessorType:
    def test_kind(self):
        assert processor().kind is PEKind.PROCESSOR
        assert not processor().is_programmable
        assert not processor().is_hardware

    def test_banks_sorted(self):
        p = processor(
            memory_banks=(MemoryBank(64 * MB, 60.0), MemoryBank(16 * MB, 20.0))
        )
        assert [b.size_bytes for b in p.memory_banks] == [16 * MB, 64 * MB]

    def test_max_memory(self):
        assert processor().max_memory_bytes == 64 * MB
        assert processor(memory_banks=()).max_memory_bytes == 0

    def test_smallest_bank_for(self):
        p = processor()
        assert p.smallest_bank_for(1).size_bytes == 16 * MB
        assert p.smallest_bank_for(32 * MB).size_bytes == 64 * MB
        assert p.smallest_bank_for(128 * MB) is None
        assert p.smallest_bank_for(0) is None

    @pytest.mark.parametrize("kwargs", [
        dict(speed=0.0),
        dict(context_switch_time=-1.0),
        dict(comm_ports=0),
        dict(cost=-1.0),
        dict(name=""),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ResourceLibraryError):
            processor(**kwargs)


class TestAsicType:
    def test_kind(self):
        a = AsicType(name="A", cost=10.0, gates=1000, pins=64)
        assert a.kind is PEKind.ASIC
        assert a.is_hardware and not a.is_programmable

    @pytest.mark.parametrize("kwargs", [dict(gates=0), dict(pins=0)])
    def test_invalid(self, kwargs):
        fields = dict(name="A", cost=10.0, gates=1000, pins=64)
        fields.update(kwargs)
        with pytest.raises(ResourceLibraryError):
            AsicType(**fields)


class TestPpeType:
    def test_kind_dispatch(self):
        assert fpga().kind is PEKind.FPGA
        cpld = fpga(device_kind=PEKind.CPLD)
        assert cpld.kind is PEKind.CPLD
        assert fpga().is_programmable

    def test_rejects_non_programmable_kind(self):
        with pytest.raises(ResourceLibraryError):
            fpga(device_kind=PEKind.ASIC)

    def test_gate_capacity(self):
        assert fpga(pfus=100).gates == 100 * GATES_PER_PFU

    def test_config_bits_and_boot_memory(self):
        f = fpga(pfus=100, config_bits_per_pfu=200)
        assert f.config_bits == 20_000
        assert f.boot_memory_bytes == 2500

    def test_full_reconfig_streams_whole_image(self):
        f = fpga(partial_reconfig=False)
        assert f.config_bits_for(10) == f.config_bits
        assert f.config_bits_for(0) == f.config_bits

    def test_partial_reconfig_scales_with_usage(self):
        f = fpga(partial_reconfig=True)
        assert f.config_bits_for(10) == 10 * f.config_bits_per_pfu
        # Capped at the device size.
        assert f.config_bits_for(10_000) == f.config_bits

    def test_config_bits_for_rejects_negative(self):
        with pytest.raises(ResourceLibraryError):
            fpga().config_bits_for(-1)
