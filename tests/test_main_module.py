"""``python -m repro`` entry point."""

import subprocess
import sys

import pytest


@pytest.mark.slow
def test_module_invocation_help():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True, text=True, timeout=60,
    )
    assert proc.returncode == 0
    for command in ("synthesize", "generate", "example",
                    "table1", "table2", "table3", "figure2", "experiments"):
        assert command in proc.stdout


@pytest.mark.slow
def test_module_invocation_table1():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "table1"],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0
    assert "Not routable" in proc.stdout
