"""Smoke tests: every example script runs end to end.

The examples are part of the public deliverable; each must execute
without error and print its headline content.  Heavier scripts run at
reduced scale through their argv.
"""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def run_example(monkeypatch, capsys, name, argv=()):
    monkeypatch.setattr(sys, "argv", ["%s/%s.py" % (EXAMPLES, name)] + list(argv))
    runpy.run_path("%s/%s.py" % (EXAMPLES, name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart")
    assert "feasible: True" in out
    assert "total cost" in out
    assert "control.actuate" in out


def test_reconfig_demo(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "reconfig_demo")
    assert "with dynamic reconfiguration" in out
    assert "mode windows" in out
    assert "saved by dynamic reconfiguration" in out


def test_allocation_walkthrough(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "allocation_walkthrough")
    assert "matches Figure 4(e): True" in out


def test_delay_management(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "delay_management")
    assert "Not routable" in out
    assert "EPUF effect" in out


@pytest.mark.slow
def test_telecom_base_station(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "telecom_base_station", ["0.04"])
    assert "cost savings from dynamic reconfiguration" in out


@pytest.mark.slow
def test_video_router(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "video_router", ["0.04"])
    assert "what reconfiguration changed" in out
    assert "how the silicon is shared" in out


@pytest.mark.slow
def test_fault_tolerant_sonet(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "fault_tolerant_sonet")
    assert "Fault-detection transformation" in out
    assert "all requirements met: True" in out
