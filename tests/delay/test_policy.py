"""ERUF/EPUF delay-management policy."""

import pytest

from repro import DelayPolicy, SpecificationError
from repro.resources.pe import AsicType, PEKind, PpeType, ProcessorType
from repro.units import GATES_PER_PFU


def fpga(pfus=100, pins=50):
    return PpeType(
        name="F", cost=1.0, device_kind=PEKind.FPGA, pfus=pfus,
        flip_flops=pfus, pins=pins,
    )


class TestDefaults:
    def test_paper_values(self):
        policy = DelayPolicy()
        assert policy.eruf == 0.70
        assert policy.epuf == 0.80

    @pytest.mark.parametrize("kwargs", [dict(eruf=0.0), dict(eruf=1.1), dict(epuf=0.0)])
    def test_invalid(self, kwargs):
        with pytest.raises(SpecificationError):
            DelayPolicy(**kwargs)


class TestCaps:
    def test_usable_pfus(self):
        assert DelayPolicy().usable_pfus(fpga(pfus=100)) == 70

    def test_usable_gates_ppe(self):
        assert DelayPolicy().usable_gates(fpga(pfus=100)) == 70 * GATES_PER_PFU

    def test_usable_pins_ppe(self):
        assert DelayPolicy().usable_pins(fpga(pins=50)) == 40

    def test_asic_uncapped_by_default(self):
        asic = AsicType(name="A", cost=1.0, gates=1000, pins=100)
        policy = DelayPolicy()
        assert policy.usable_gates(asic) == 1000
        assert policy.usable_pins(asic) == 100

    def test_asic_capped_when_enabled(self):
        asic = AsicType(name="A", cost=1.0, gates=1000, pins=100)
        policy = DelayPolicy(apply_to_asics=True)
        assert policy.usable_gates(asic) == 700
        assert policy.usable_pins(asic) == 80

    def test_admits(self):
        policy = DelayPolicy()
        device = fpga(pfus=100, pins=50)
        assert policy.admits(device, 700, 40)
        assert not policy.admits(device, 701, 40)
        assert not policy.admits(device, 700, 41)

    def test_processor_has_no_gates(self):
        p = ProcessorType(name="P", cost=1.0)
        with pytest.raises(SpecificationError):
            DelayPolicy().usable_gates(p)
