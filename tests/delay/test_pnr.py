"""Place-and-route simulator: the Table 1 substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import RoutingError, SpecificationError
from repro.delay.circuits import (
    TABLE1_CIRCUITS,
    UNROUTABLE_AT_FULL,
    all_table1_circuits,
    table1_circuit,
)
from repro.delay.pnr import Circuit, Device, delay_increase, place_and_route

SWEEP = (0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00)


def small_circuit(**overrides):
    fields = dict(name="c", n_pfus=24, pins=16, seed=3, net_density=0.4, depth=6)
    fields.update(overrides)
    return Circuit(**fields)


class TestCircuit:
    @pytest.mark.parametrize("kwargs", [
        dict(n_pfus=1), dict(pins=0), dict(net_density=-0.1), dict(depth=0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(SpecificationError):
            small_circuit(**kwargs)

    def test_netlist_deterministic(self):
        assert small_circuit().nets() == small_circuit().nets()

    def test_netlist_spans_all_cells(self):
        c = small_circuit()
        touched = {t for net in c.nets() for t in net}
        assert touched == set(range(c.n_pfus))

    def test_density_adds_nets(self):
        sparse = small_circuit(net_density=0.0)
        dense = small_circuit(net_density=1.0)
        assert len(dense.nets()) > len(sparse.nets())


class TestPlaceAndRoute:
    def test_basic_run(self):
        result = place_and_route(small_circuit(), 0.70)
        assert result.routable
        assert result.delay_ns > 0
        assert 0 < result.max_congestion < 1

    def test_deterministic(self):
        a = place_and_route(small_circuit(), 0.8)
        b = place_and_route(small_circuit(), 0.8)
        assert a.delay_ns == b.delay_ns
        assert a.max_congestion == b.max_congestion

    @pytest.mark.parametrize("eruf", [0.0, -0.5, 1.5])
    def test_invalid_eruf(self, eruf):
        with pytest.raises(SpecificationError):
            place_and_route(small_circuit(), eruf)

    def test_delay_monotone_in_eruf(self):
        delays = [place_and_route(small_circuit(), e).delay_ns for e in SWEEP]
        assert all(b >= a - 1e-9 for a, b in zip(delays, delays[1:]))

    def test_congestion_monotone_in_eruf(self):
        occ = [place_and_route(small_circuit(), e).max_congestion for e in SWEEP]
        assert all(b >= a - 1e-9 for a, b in zip(occ, occ[1:]))

    def test_pin_pressure_increases_congestion(self):
        low = place_and_route(small_circuit(), 0.9, epuf=0.60)
        high = place_and_route(small_circuit(), 0.9, epuf=1.00)
        assert high.max_congestion > low.max_congestion

    def test_scatter_zero_at_reference(self):
        assert Device().scatter_sigma(0.70) == 0.0
        assert Device().scatter_sigma(0.50) == 0.0
        assert Device().scatter_sigma(0.75) > 0.0


class TestDelayIncrease:
    def test_zero_at_reference(self):
        assert delay_increase(small_circuit(), 0.70) == 0.0

    def test_positive_above_reference(self):
        assert delay_increase(small_circuit(), 0.95) > 0.0

    def test_clamped_below_reference(self):
        assert delay_increase(small_circuit(), 0.65) >= 0.0


class TestTable1Circuits:
    def test_names_and_count(self):
        assert len(TABLE1_CIRCUITS) == 10
        assert TABLE1_CIRCUITS[0] == "cvs1"

    def test_pfu_counts_match_paper(self):
        expected = {
            "cvs1": 18, "cvs2": 20, "xtrs1": 36, "xtrs2": 40, "rnvk": 48,
            "fcsdp": 35, "r2d2p": 46, "cv46": 74, "wamxp": 84, "pewxfm": 47,
        }
        for name, pfus in expected.items():
            assert table1_circuit(name).n_pfus == pfus

    def test_unknown_circuit(self):
        with pytest.raises(SpecificationError):
            table1_circuit("nope")

    def test_all_zero_at_eruf_70(self):
        for circuit in all_table1_circuits().values():
            assert delay_increase(circuit, 0.70) == 0.0

    def test_all_routable_at_095(self):
        for circuit in all_table1_circuits().values():
            place_and_route(circuit, 0.95)  # must not raise

    def test_exactly_three_unroutable_at_full(self):
        unroutable = []
        for name, circuit in all_table1_circuits().items():
            try:
                place_and_route(circuit, 1.00)
            except RoutingError:
                unroutable.append(name)
        assert tuple(unroutable) == UNROUTABLE_AT_FULL

    def test_monotone_increase_for_every_circuit(self):
        for circuit in all_table1_circuits().values():
            previous = -1.0
            for eruf in SWEEP:
                try:
                    value = delay_increase(circuit, eruf)
                except RoutingError:
                    break
                assert value >= previous - 1e-9
                previous = value

    def test_large_increase_at_top_end(self):
        # The paper's routable circuits show 48-156 % at full
        # utilization; ours must at least be substantial (> 40 %).
        for name, circuit in all_table1_circuits().items():
            if name in UNROUTABLE_AT_FULL:
                continue
            assert delay_increase(circuit, 1.00) > 40.0


@settings(max_examples=25, deadline=None)
@given(
    n_pfus=st.integers(min_value=8, max_value=60),
    seed=st.integers(min_value=0, max_value=1000),
    density=st.floats(min_value=0.0, max_value=0.6),
)
def test_any_circuit_routes_at_reference(n_pfus, seed, density):
    """At the paper's 70 % cap, the fabric routes everything the
    generator can produce in this density range."""
    circuit = Circuit(
        name="h", n_pfus=n_pfus, pins=8, seed=seed, net_density=density, depth=5
    )
    result = place_and_route(circuit, 0.70)
    assert result.routable
