"""Table-1 circuit catalog extras and EPUF behaviour."""

import pytest

from repro.delay.circuits import (
    TABLE1_CIRCUITS,
    UNROUTABLE_AT_FULL,
    all_table1_circuits,
    table1_circuit,
)
from repro.delay.pnr import Device, delay_increase, place_and_route
from repro.errors import RoutingError


class TestCatalogExtras:
    def test_all_circuits_have_distinct_seeds(self):
        seeds = [table1_circuit(n).seed for n in TABLE1_CIRCUITS]
        assert len(set(seeds)) == len(seeds)

    def test_dict_preserves_row_order(self):
        assert list(all_table1_circuits()) == TABLE1_CIRCUITS

    def test_unroutable_set_is_subset(self):
        assert set(UNROUTABLE_AT_FULL) <= set(TABLE1_CIRCUITS)


class TestEpufColumn:
    """The paper's experiments varied EPUF 70-100 % too."""

    def test_epuf_within_cap_is_safe(self):
        # At the paper's operating point (ERUF .70 / EPUF .80) every
        # circuit routes with zero delay increase.
        for name in TABLE1_CIRCUITS:
            assert delay_increase(table1_circuit(name), 0.70, epuf=0.80) == 0.0

    def test_high_epuf_hurts_at_high_eruf(self):
        circuit = table1_circuit("fcsdp")
        low = place_and_route(circuit, 0.90, epuf=0.70).max_congestion
        high = place_and_route(circuit, 0.90, epuf=1.00).max_congestion
        assert high > low

    def test_low_epuf_never_worse(self):
        circuit = table1_circuit("xtrs2")
        for eruf in (0.80, 0.90):
            relaxed = delay_increase(circuit, eruf, epuf=0.60)
            pressed = delay_increase(circuit, eruf, epuf=1.00)
            assert pressed >= relaxed - 1e-9


class TestDeviceKnobs:
    def test_more_tracks_reduce_congestion(self):
        circuit = table1_circuit("rnvk")
        sparse = place_and_route(circuit, 0.9, device=Device(tracks_per_cell=8.0))
        assert sparse.max_congestion < place_and_route(circuit, 0.9).max_congestion

    def test_overflow_limit_controls_routability(self):
        circuit = table1_circuit("r2d2p")
        with pytest.raises(RoutingError):
            place_and_route(circuit, 1.0)
        generous = Device(overflow_limit=5.0)
        assert place_and_route(circuit, 1.0, device=generous).routable

    def test_invalid_device(self):
        from repro.errors import SpecificationError

        with pytest.raises(SpecificationError):
            Device(tracks_per_cell=0)
        with pytest.raises(SpecificationError):
            Device(congestion_knee=0.9, overflow_limit=0.8)
