"""Admission validation and response-shape units for service_json."""

from __future__ import annotations

import pytest

from repro.io.service_json import (
    ERROR_KINDS,
    REQUEST_FORMAT,
    RESPONSE_FORMAT,
    SERVICE_SCHEMA_VERSION,
    RequestValidationError,
    build_request,
    done_response,
    error_body,
    failed_response,
    request_from_spec_payload,
    result_bytes,
    strip_run_varying,
    validate_request,
)
from repro.io.spec_json import spec_to_dict

from tests.service.conftest import service_spec


def valid_payload(**config):
    """A request document that passes validation as-is."""
    return build_request(service_spec(), config or None)


def errors_of(payload):
    """The validation error list for ``payload`` (must fail)."""
    with pytest.raises(RequestValidationError) as excinfo:
        validate_request(payload)
    return excinfo.value.errors


def test_build_request_round_trips_through_validation():
    spec, overrides = validate_request(valid_payload(prune=True))
    assert spec.name == "svc-tiny"
    assert overrides == {"prune": True}


def test_request_from_spec_payload_matches_build_request():
    spec = service_spec()
    assert request_from_spec_payload(spec_to_dict(spec)) == build_request(spec)


def test_non_object_request_is_rejected():
    assert "expected an object" in errors_of([1, 2, 3])[0]


def test_every_envelope_error_is_collected_in_one_pass():
    errors = errors_of({"format": "nope", "version": 99, "catalog": "exotic"})
    joined = "\n".join(errors)
    assert "format:" in joined
    assert "version:" in joined
    assert "catalog:" in joined
    assert "spec:" in joined  # the missing spec is reported too


def test_unknown_config_field_is_rejected_not_ignored():
    payload = valid_payload()
    payload["config"] = {"cache_dir": "/tmp/x"}
    (error,) = errors_of(payload)
    assert "config.cache_dir" in error and "non-overridable" in error


def test_boolean_does_not_pass_an_integer_knob():
    payload = valid_payload()
    payload["config"] = {"max_explicit_copies": True}
    (error,) = errors_of(payload)
    assert "config.max_explicit_copies" in error and "boolean" in error


def test_wrongly_typed_and_unknown_config_errors_accumulate():
    payload = valid_payload()
    payload["config"] = {"prune": "yes", "zoom": 1}
    errors = errors_of(payload)
    assert len(errors) == 2


def test_malformed_spec_document_is_a_validation_error():
    payload = valid_payload()
    payload["spec"]["graphs"] = "not-a-list"
    (error,) = errors_of(payload)
    assert error.startswith("spec:")


def test_strip_run_varying_drops_only_the_run_varying_fields():
    payload = {"feasible": True, "cost": 1.0, "cpu_seconds": 0.5,
               "stats": {"events": 3}}
    neutral = strip_run_varying(payload)
    assert neutral == {"feasible": True, "cost": 1.0}
    assert "cpu_seconds" in payload  # the input is not mutated


def test_done_response_is_run_neutral_and_stamped():
    key = {"spec": "a", "catalog": "b", "config": "c"}
    response = done_response(
        key, {"cost": 2.0, "cpu_seconds": 9.9}, cache_hit=True, coalesced=False
    )
    assert response["format"] == RESPONSE_FORMAT
    assert response["version"] == SERVICE_SCHEMA_VERSION
    assert response["cache_hit"] is True
    assert "cpu_seconds" not in response["result"]


def test_result_bytes_agree_across_provenance_flags():
    key = {"spec": "a", "catalog": "b", "config": "c"}
    computed = done_response(key, {"cost": 2.0, "cpu_seconds": 1.0},
                             cache_hit=False, coalesced=False)
    cached = done_response(key, {"cost": 2.0, "cpu_seconds": 7.7},
                           cache_hit=True, coalesced=True)
    assert result_bytes(computed) == result_bytes(cached)


def test_failed_response_carries_the_supervision_verdict():
    response = failed_response({"spec": "a"}, "crash", "worker died",
                               coalesced=True)
    assert response["status"] == "failed"
    assert response["coalesced"] is True
    assert response["error"] == {"kind": "crash", "detail": "worker died"}


def test_error_body_rejects_unknown_kinds():
    with pytest.raises(ValueError):
        error_body("tea-time", "short and stout")


def test_error_kinds_map_to_the_documented_statuses():
    assert ERROR_KINDS["bad-request"] == 400
    assert ERROR_KINDS["payload-too-large"] == 413
    assert ERROR_KINDS["draining"] == 503


def test_request_format_name_is_stable():
    assert REQUEST_FORMAT == "crusade-request"
