"""End-to-end server behaviour through a real socket and real client.

Every test here exchanges actual HTTP with a listening
:class:`~repro.service.server.SynthesisServer` (see conftest's
:class:`ServerHarness`); the synthesis tests run real jobs in real
worker processes against the tiny deterministic spec.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
import threading

from repro.io.service_json import build_request, result_bytes
from repro.service.client import drain, healthz, stats, submit

from tests.service.conftest import service_spec


def raw_exchange(port: int, payload: bytes) -> bytes:
    """Ship raw bytes at the server, return everything it answers."""
    with socket.create_connection(("127.0.0.1", port), timeout=10.0) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)


def post_body(port: int, path: str, body: bytes):
    """POST arbitrary bytes as JSON; returns (status, decoded body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30.0)
    try:
        conn.request("POST", path, body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


class FakePool:
    """A controllable stand-in for ShardPool (the coalescing seam)."""

    workers = 1
    alive_workers = 1
    backlog = 0
    draining = False

    def __init__(self, verdict=None) -> None:
        """``verdict`` is returned by every submit (default: done)."""
        self.calls = []
        self.release = None  # created on the server loop in start()
        self.verdict = verdict or {
            "status": "done",
            "result": {"result": {"system": "svc-tiny", "cost": 1.0}},
            "attempts": 1, "queue_wait_s": 0.0, "shard": 0,
        }

    async def start(self) -> None:
        self.release = asyncio.Event()

    async def drain(self) -> None:
        pass

    async def submit(self, job_id, payload):
        self.calls.append((job_id, payload))
        await self.release.wait()
        return dict(self.verdict)


# ----------------------------------------------------------------------
# plumbing endpoints
# ----------------------------------------------------------------------
def test_healthz_reports_live_workers(harness_factory):
    harness = harness_factory(pool=FakePool())
    payload = healthz("127.0.0.1", harness.port)
    assert payload["status"] == "ok"
    assert payload["workers"] == 1
    assert payload["cache"] is False


def test_unknown_path_is_a_structured_404(harness_factory):
    harness = harness_factory(pool=FakePool())
    status, body = post_body(harness.port, "/frobnicate", b"{}")
    assert status == 404
    assert body["error"]["kind"] == "not-found"


def test_wrong_method_is_a_structured_405(harness_factory):
    harness = harness_factory(pool=FakePool())
    status, body = post_body(harness.port, "/healthz", b"{}")
    assert status == 405
    assert body["error"]["kind"] == "method-not-allowed"


def test_non_json_body_is_a_structured_400(harness_factory):
    harness = harness_factory(pool=FakePool())
    status, body = post_body(harness.port, "/synthesize", b"{nope")
    assert status == 400
    assert body["error"]["kind"] == "invalid-json"


def test_invalid_request_gets_every_error_in_one_400(harness_factory):
    harness = harness_factory(pool=FakePool())
    status, body = submit(
        "127.0.0.1", harness.port, {"format": "wrong", "config": {"zoom": 1}}
    )
    assert status == 400
    assert body["error"]["kind"] == "bad-request"
    joined = "\n".join(body["error"]["errors"])
    assert "format:" in joined and "config.zoom" in joined and "spec:" in joined


def test_oversized_declared_body_is_a_413(harness_factory):
    harness = harness_factory(pool=FakePool())
    raw = (b"POST /synthesize HTTP/1.1\r\n"
           b"Content-Length: 99999999999\r\n\r\n")
    answer = raw_exchange(harness.port, raw)
    assert answer.startswith(b"HTTP/1.1 413 ")
    assert b"payload-too-large" in answer


def test_bare_tcp_probe_is_tolerated(harness_factory):
    harness = harness_factory(pool=FakePool())
    assert raw_exchange(harness.port, b"") == b""
    assert healthz("127.0.0.1", harness.port)["status"] == "ok"


# ----------------------------------------------------------------------
# the synthesis path (real workers, real store)
# ----------------------------------------------------------------------
def test_cache_miss_then_exact_hit_is_byte_identical(harness_factory, tmp_path):
    harness = harness_factory(workers=1, cache_dir=str(tmp_path / "store"))
    request = build_request(service_spec())
    status1, first = submit("127.0.0.1", harness.port, request)
    status2, second = submit("127.0.0.1", harness.port, request)
    assert (status1, status2) == (200, 200)
    assert first["status"] == second["status"] == "done"
    assert first["cache_hit"] is False
    assert second["cache_hit"] is True
    assert first["key"] == second["key"]
    assert result_bytes(first) == result_bytes(second)
    counters = stats("127.0.0.1", harness.port)["counters"]
    assert counters["service.cache.miss"] == 1
    assert counters["service.cache.hit"] == 1
    assert counters["service.jobs.done"] == 1


def test_config_overrides_shift_the_key_by_their_semantics(harness_factory,
                                                           tmp_path):
    harness = harness_factory(workers=1, cache_dir=str(tmp_path / "store"))
    base = build_request(service_spec())
    baseline = build_request(service_spec(), {"reconfiguration": False})
    pruned = build_request(service_spec(), {"prune": True})
    _, first = submit("127.0.0.1", harness.port, base)
    _, second = submit("127.0.0.1", harness.port, baseline)
    _, third = submit("127.0.0.1", harness.port, pruned)
    # A semantic knob is a different synthesis: new key, cache miss.
    assert second["cache_hit"] is False
    assert first["key"]["config"] != second["key"]["config"]
    assert first["key"]["spec"] == second["key"]["spec"]
    # A digest-neutral perf knob is the *same* synthesis: exact hit.
    assert third["cache_hit"] is True
    assert third["key"] == first["key"]


def test_failed_job_degrades_to_a_structured_response(harness_factory):
    verdict = {
        "status": "failed", "attempts": 2,
        "error": {"kind": "crash", "detail": "worker process died"},
        "queue_wait_s": 0.0, "shard": 0,
    }
    pool = FakePool(verdict=verdict)
    harness = harness_factory(pool=pool)
    harness.run(_set_event(pool))
    status, body = submit(
        "127.0.0.1", harness.port, build_request(service_spec())
    )
    assert status == 200  # the request was valid; the job failed
    assert body["status"] == "failed"
    assert body["error"]["kind"] == "crash"


async def _set_event(pool):
    pool.release.set()


def test_duplicate_inflight_requests_coalesce_onto_one_job(harness_factory):
    pool = FakePool()
    harness = harness_factory(pool=pool)
    request = build_request(service_spec())
    results = {}

    def worker(slot):
        results[slot] = submit("127.0.0.1", harness.port, request,
                               timeout_s=60.0)

    leader = threading.Thread(target=worker, args=("leader",))
    leader.start()
    _await_counter(harness, "service.cache.miss", 1)
    follower = threading.Thread(target=worker, args=("follower",))
    follower.start()
    _await_counter(harness, "service.coalesced", 1)
    harness.run(_set_event(pool))
    leader.join(30.0)
    follower.join(30.0)
    documents = [results["leader"][1], results["follower"][1]]
    assert len(pool.calls) == 1  # one synthesis for two requests
    assert sorted(d["coalesced"] for d in documents) == [False, True]
    assert all(d["status"] == "done" for d in documents)
    assert result_bytes(documents[0]) == result_bytes(documents[1])


def _await_counter(harness, name, value, timeout_s=30.0):
    """Poll /stats until ``name`` reaches ``value``."""
    import time

    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        counters = stats("127.0.0.1", harness.port)["counters"]
        if counters.get(name, 0) >= value:
            return
        time.sleep(0.02)
    raise AssertionError("counter %s never reached %d" % (name, value))


# ----------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------
def test_drain_refuses_new_work_but_keeps_answering_probes(harness_factory):
    harness = harness_factory(workers=1)
    request = build_request(service_spec())
    _, first = submit("127.0.0.1", harness.port, request)
    assert first["status"] == "done"
    drained = drain("127.0.0.1", harness.port)
    assert drained["status"] == "drained"
    status, body = submit("127.0.0.1", harness.port, request)
    assert status == 503
    assert body["error"]["kind"] == "draining"
    assert healthz("127.0.0.1", harness.port)["status"] == "drained"
    counters = stats("127.0.0.1", harness.port)["counters"]
    assert counters["service.rejected.draining"] == 1
