"""Shard-pool supervision: crash, error, timeout, retry, drain.

These run real worker processes against the ``selftest`` job kind and
its fault-injection hook (``params["inject"]``), the same mechanism
the campaign runner's fault tests use -- so every verdict asserted
here was produced by an actual dead process, not a mock.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.campaign.jobs import Job
from repro.obs.trace import Tracer
from repro.service.pool import PoolClosed, ShardPool


def selftest_payload(job_id: str, inject=None) -> dict:
    """A minimal selftest job payload, optionally fault-injected."""
    params = {"value": "ping"}
    if inject:
        params["inject"] = inject
    return Job(
        id=job_id, kind="selftest", example="A1TR", scale=0.05,
        variant="default", config={}, params=params,
    ).to_dict()


def run_pool_scenario(scenario, **pool_kwargs):
    """Start a pool, run ``scenario(pool)``, always drain."""

    async def main():
        pool = ShardPool(**pool_kwargs)
        await pool.start()
        try:
            return await scenario(pool)
        finally:
            await pool.drain()

    return asyncio.run(main())


TRANSPORTS = ["pipe", "socket"]


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_clean_job_resolves_done_with_result_and_trace(transport):
    tracer = Tracer()

    async def scenario(pool):
        return await pool.submit("j1", selftest_payload("j1"))

    verdict = run_pool_scenario(
        scenario, workers=1, tracer=tracer, transport=transport
    )
    assert verdict["status"] == "done"
    assert verdict["result"]["echo"] == "ping"
    assert verdict["attempts"] == 1
    assert verdict["shard"] == 0
    assert verdict["queue_wait_s"] >= 0.0
    assert tracer.counters.as_dict()["service.jobs.done"] == 1


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_crashed_worker_is_respawned_and_the_job_retried(transport):
    tracer = Tracer()

    async def scenario(pool):
        payload = selftest_payload("j1", inject={"crash_attempts": 1})
        verdict = await pool.submit("j1", payload)
        assert pool.alive_workers == 1  # the shard got a fresh process
        return verdict

    verdict = run_pool_scenario(
        scenario, workers=1, retries=1, tracer=tracer, transport=transport
    )
    assert verdict["status"] == "done"
    assert verdict["attempts"] == 2
    counters = tracer.counters.as_dict()
    assert counters["service.jobs.crash"] == 1
    assert counters["service.jobs.retried"] == 1
    assert counters["exec.workers.restarts"] == 1


def test_exhausted_retries_resolve_to_a_structured_crash_failure():
    async def scenario(pool):
        payload = selftest_payload("j1", inject={"crash_attempts": 5})
        return await pool.submit("j1", payload)

    verdict = run_pool_scenario(scenario, workers=1, retries=1)
    assert verdict["status"] == "failed"
    assert verdict["error"]["kind"] == "crash"
    assert verdict["attempts"] == 2


def test_job_exception_surfaces_as_an_error_verdict_with_traceback():
    async def scenario(pool):
        payload = selftest_payload("j1", inject={"error_attempts": 1})
        return await pool.submit("j1", payload)

    verdict = run_pool_scenario(scenario, workers=1, retries=0)
    assert verdict["status"] == "failed"
    assert verdict["error"]["kind"] == "error"
    assert "injected failure" in verdict["error"]["detail"]


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_hung_worker_is_killed_and_reported_as_timeout(transport):
    async def scenario(pool):
        payload = selftest_payload(
            "j1", inject={"hang_attempts": 1, "hang_seconds": 60.0}
        )
        return await pool.submit("j1", payload)

    verdict = run_pool_scenario(
        scenario, workers=1, retries=0, timeout_s=1.0, transport=transport
    )
    assert verdict["status"] == "failed"
    assert verdict["error"]["kind"] == "timeout"


def test_two_shards_share_one_queue():
    async def scenario(pool):
        verdicts = await asyncio.gather(*[
            pool.submit("j%d" % i, selftest_payload("j%d" % i))
            for i in range(4)
        ])
        return verdicts

    verdicts = run_pool_scenario(scenario, workers=2)
    assert all(v["status"] == "done" for v in verdicts)
    assert {v["shard"] for v in verdicts} <= {0, 1}


def test_draining_pool_refuses_new_jobs_and_stops_workers():
    async def main():
        pool = ShardPool(workers=1)
        await pool.start()
        first = await pool.submit("j1", selftest_payload("j1"))
        await pool.drain()
        assert first["status"] == "done"
        assert pool.alive_workers == 0
        with pytest.raises(PoolClosed):
            await pool.submit("j2", selftest_payload("j2"))

    asyncio.run(main())


def test_unstarted_pool_refuses_jobs():
    async def main():
        pool = ShardPool(workers=1)
        with pytest.raises(PoolClosed):
            await pool.submit("j1", selftest_payload("j1"))

    asyncio.run(main())


def test_constructor_rejects_nonsense():
    with pytest.raises(ValueError):
        ShardPool(workers=0)
    with pytest.raises(ValueError):
        ShardPool(workers=-1, worker_port=0)
    with pytest.raises(ValueError):
        ShardPool(retries=-1)


def test_zero_workers_is_legal_with_a_dialin_port():
    pool = ShardPool(workers=0, worker_port=0)
    assert pool.workers == 0 and pool.listen_port is None  # not started


def test_remote_death_mid_job_hands_the_job_back_intact():
    """A dial-in shard whose host vanishes mid-job does not burn a
    retry: the job is re-queued untouched (attempt numbering restarts)
    and the next worker completes it, even with retries=0."""
    import socket as socket_mod

    from repro.exec.frames import FrameConnection
    from repro.exec.worker import HELLO_MAGIC, PROTOCOL_VERSION

    def dial(port):
        sock = socket_mod.create_connection(("127.0.0.1", port), timeout=5.0)
        conn = FrameConnection(sock)
        conn.send({"hello": HELLO_MAGIC, "v": PROTOCOL_VERSION, "pid": 0})
        welcome = conn.recv(timeout=5.0)
        assert welcome["role"] == "job"
        return conn

    tracer = Tracer()

    async def main():
        pool = ShardPool(
            workers=0, worker_port=0, worker_host="127.0.0.1",
            retries=0, tracer=tracer,
        )
        await pool.start()
        loop = asyncio.get_running_loop()
        try:
            first = await loop.run_in_executor(None, dial, pool.listen_port)
            task = asyncio.ensure_future(
                pool.submit("j1", selftest_payload("j1"))
            )
            job = await loop.run_in_executor(
                None, lambda: first.recv(timeout=10.0)
            )
            assert job[0] == "job" and job[1] == "j1" and job[2] == 1
            first.close()  # the remote host vanishes mid-job
            second = await loop.run_in_executor(None, dial, pool.listen_port)
            replay = await loop.run_in_executor(
                None, lambda: second.recv(timeout=10.0)
            )
            assert replay[0] == "job" and replay[1] == "j1"
            assert replay[2] == 1  # handed back intact, not a retry
            second.send(("ok", "j1", {"echo": "ping"}))
            verdict = await asyncio.wait_for(task, timeout=10.0)
            assert verdict["status"] == "done"
            assert verdict["attempts"] == 1
        finally:
            await pool.drain()

    asyncio.run(main())
    counters = tracer.counters.as_dict()
    assert counters["service.workers.joined"] == 2
    assert counters["service.workers.left"] >= 1
    assert counters["service.jobs.crash"] == 1
    assert "service.jobs.retried" not in counters
    assert "service.jobs.failed" not in counters


def test_worker_info_reports_shard_health():
    async def scenario(pool):
        await pool.submit("j1", selftest_payload("j1"))
        info = pool.worker_info()
        assert len(info) == 1
        assert info[0]["shard"] == 0
        assert info[0]["kind"] == "pipe"
        assert info[0]["alive"] is True
        assert info[0]["jobs_done"] == 1
        assert info[0]["restarts"] == 0

    run_pool_scenario(scenario, workers=1)
