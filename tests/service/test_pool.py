"""Shard-pool supervision: crash, error, timeout, retry, drain.

These run real worker processes against the ``selftest`` job kind and
its fault-injection hook (``params["inject"]``), the same mechanism
the campaign runner's fault tests use -- so every verdict asserted
here was produced by an actual dead process, not a mock.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.campaign.jobs import Job
from repro.obs.trace import Tracer
from repro.service.pool import PoolClosed, ShardPool


def selftest_payload(job_id: str, inject=None) -> dict:
    """A minimal selftest job payload, optionally fault-injected."""
    params = {"value": "ping"}
    if inject:
        params["inject"] = inject
    return Job(
        id=job_id, kind="selftest", example="A1TR", scale=0.05,
        variant="default", config={}, params=params,
    ).to_dict()


def run_pool_scenario(scenario, **pool_kwargs):
    """Start a pool, run ``scenario(pool)``, always drain."""

    async def main():
        pool = ShardPool(**pool_kwargs)
        await pool.start()
        try:
            return await scenario(pool)
        finally:
            await pool.drain()

    return asyncio.run(main())


def test_clean_job_resolves_done_with_result_and_trace():
    tracer = Tracer()

    async def scenario(pool):
        return await pool.submit("j1", selftest_payload("j1"))

    verdict = run_pool_scenario(scenario, workers=1, tracer=tracer)
    assert verdict["status"] == "done"
    assert verdict["result"]["echo"] == "ping"
    assert verdict["attempts"] == 1
    assert verdict["shard"] == 0
    assert verdict["queue_wait_s"] >= 0.0
    assert tracer.counters.as_dict()["service.jobs.done"] == 1


def test_crashed_worker_is_respawned_and_the_job_retried():
    tracer = Tracer()

    async def scenario(pool):
        payload = selftest_payload("j1", inject={"crash_attempts": 1})
        verdict = await pool.submit("j1", payload)
        assert pool.alive_workers == 1  # the shard got a fresh process
        return verdict

    verdict = run_pool_scenario(scenario, workers=1, retries=1, tracer=tracer)
    assert verdict["status"] == "done"
    assert verdict["attempts"] == 2
    counters = tracer.counters.as_dict()
    assert counters["service.jobs.crash"] == 1
    assert counters["service.jobs.retried"] == 1


def test_exhausted_retries_resolve_to_a_structured_crash_failure():
    async def scenario(pool):
        payload = selftest_payload("j1", inject={"crash_attempts": 5})
        return await pool.submit("j1", payload)

    verdict = run_pool_scenario(scenario, workers=1, retries=1)
    assert verdict["status"] == "failed"
    assert verdict["error"]["kind"] == "crash"
    assert verdict["attempts"] == 2


def test_job_exception_surfaces_as_an_error_verdict_with_traceback():
    async def scenario(pool):
        payload = selftest_payload("j1", inject={"error_attempts": 1})
        return await pool.submit("j1", payload)

    verdict = run_pool_scenario(scenario, workers=1, retries=0)
    assert verdict["status"] == "failed"
    assert verdict["error"]["kind"] == "error"
    assert "injected failure" in verdict["error"]["detail"]


def test_hung_worker_is_killed_and_reported_as_timeout():
    async def scenario(pool):
        payload = selftest_payload(
            "j1", inject={"hang_attempts": 1, "hang_seconds": 60.0}
        )
        return await pool.submit("j1", payload)

    verdict = run_pool_scenario(scenario, workers=1, retries=0, timeout_s=1.0)
    assert verdict["status"] == "failed"
    assert verdict["error"]["kind"] == "timeout"


def test_two_shards_share_one_queue():
    async def scenario(pool):
        verdicts = await asyncio.gather(*[
            pool.submit("j%d" % i, selftest_payload("j%d" % i))
            for i in range(4)
        ])
        return verdicts

    verdicts = run_pool_scenario(scenario, workers=2)
    assert all(v["status"] == "done" for v in verdicts)
    assert {v["shard"] for v in verdicts} <= {0, 1}


def test_draining_pool_refuses_new_jobs_and_stops_workers():
    async def main():
        pool = ShardPool(workers=1)
        await pool.start()
        first = await pool.submit("j1", selftest_payload("j1"))
        await pool.drain()
        assert first["status"] == "done"
        assert pool.alive_workers == 0
        with pytest.raises(PoolClosed):
            await pool.submit("j2", selftest_payload("j2"))

    asyncio.run(main())


def test_unstarted_pool_refuses_jobs():
    async def main():
        pool = ShardPool(workers=1)
        with pytest.raises(PoolClosed):
            await pool.submit("j1", selftest_payload("j1"))

    asyncio.run(main())


def test_constructor_rejects_nonsense():
    with pytest.raises(ValueError):
        ShardPool(workers=0)
    with pytest.raises(ValueError):
        ShardPool(retries=-1)
