"""Fixtures for the synthesis-service tests.

The server is asyncio; the tests (and the blocking reference client
they exercise) are synchronous.  :class:`ServerHarness` hosts one
:class:`~repro.service.server.SynthesisServer` on a dedicated event
loop in a daemon thread, so tests talk to a *real* listening socket
through the same client ``repro submit`` uses.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.graph.spec import SystemSpec
from repro.graph.taskgraph import TaskGraph
from repro.graph.task import MemoryRequirement, Task
from repro.service.server import SynthesisServer


def service_spec(name: str = "svc-tiny") -> SystemSpec:
    """A deterministic three-task system small enough to synthesize
    in well under a second, so server tests can run real jobs."""
    g = TaskGraph(name="g0", period=0.1, deadline=0.1)
    for task in ("a", "b", "c"):
        g.add_task(
            Task(
                name=task,
                # The service always synthesizes against the default
                # 1997 catalog, so name a PE type that exists there.
                exec_times={"MC68040": 0.0005},
                memory=MemoryRequirement(program=4096, data=2048, stack=512),
            )
        )
    g.add_edge("a", "b", bytes_=128)
    g.add_edge("b", "c", bytes_=128)
    return SystemSpec(name, [g])


class ServerHarness:
    """One SynthesisServer on its own event loop in a daemon thread."""

    def __init__(self, **kwargs) -> None:
        """Store the server kwargs; nothing runs until :meth:`start`."""
        self._kwargs = kwargs
        self.loop: asyncio.AbstractEventLoop = None
        self.server: SynthesisServer = None
        self._thread: threading.Thread = None
        self._startup_error: BaseException = None

    @property
    def port(self) -> int:
        """The bound (possibly ephemeral) port."""
        return self.server.port

    def start(self) -> "ServerHarness":
        """Spin the loop thread up and block until the socket binds."""
        started = threading.Event()

        def run() -> None:
            self.loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self.loop)
            try:
                self.server = SynthesisServer(port=0, **self._kwargs)
                self.loop.run_until_complete(self.server.start())
            except BaseException as exc:  # surface on the test thread
                self._startup_error = exc
                started.set()
                return
            started.set()
            self.loop.run_forever()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        assert started.wait(30.0), "server thread never came up"
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def run(self, coro, timeout_s: float = 60.0):
        """Run ``coro`` on the server's loop; return its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout_s)

    def stop(self) -> None:
        """Close the server, stop the loop, join the thread."""
        if self.server is not None and self.loop.is_running():
            self.run(self.server.close(), timeout_s=120.0)
        if self.loop.is_running():
            self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(30.0)
        if not self.loop.is_closed():
            self.loop.close()


@pytest.fixture
def harness_factory():
    """Build ServerHarness instances that are torn down after the test."""
    live = []

    def build(**kwargs) -> ServerHarness:
        harness = ServerHarness(**kwargs).start()
        live.append(harness)
        return harness

    yield build
    for harness in live:
        harness.stop()
