"""Result export: mode windows and reconfiguration counters."""

import pytest

from repro import CrusadeConfig, crusade
from repro.bench.figure2 import figure2_library, figure2_spec
from repro.io.result_json import result_to_dict


@pytest.fixture(scope="module")
def payload():
    result = crusade(
        figure2_spec(), library=figure2_library(),
        config=CrusadeConfig(max_explicit_copies=4),
    )
    return result_to_dict(result), result


class TestModeWindowExport:
    def test_windows_present_for_ppes(self, payload):
        data, result = payload
        windows = data["schedule"]["mode_windows"]
        assert set(windows) == set(result.schedule.ppe_timelines)
        for series in windows.values():
            for w in series:
                assert w["end"] >= w["start"]
                assert w["boot_time"] >= 0

    def test_reconfigurations_match(self, payload):
        data, result = payload
        assert data["schedule"]["reconfigurations"] == result.reconfigurations

    def test_replicas_exported(self, payload):
        data, result = payload
        f1 = [p for p in data["architecture"]["pes"] if p["id"] == "F1#0"][0]
        # T1 is replicated into the second configuration (Figure 2(e)).
        assert "T1/c000" in f1["replicas"]
        replica_modes = f1["replicas"]["T1/c000"]
        primary = data["architecture"]["allocation"]["T1/c000"]["mode"]
        assert len(replica_modes) == 1
        assert replica_modes[0] != primary

    def test_interfaces_exported(self, payload):
        data, result = payload
        assert "F1#0" in data["interfaces"]
        device = data["interfaces"]["F1#0"]
        assert device["storage_bytes"] > 0
        assert max(device["runtime_boot_times"].values()) > 0
