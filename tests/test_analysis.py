"""Architecture comparison and mode-sharing analysis."""

import pytest

from repro import CrusadeConfig, SpecificationError, crusade
from repro.analysis.compare import compare_results
from repro.analysis.sharing import mode_sharing_report
from repro.bench.figure2 import figure2_library, figure2_spec


@pytest.fixture(scope="module")
def figure2_pair():
    spec = figure2_spec()
    baseline = crusade(
        spec, library=figure2_library(),
        config=CrusadeConfig(reconfiguration=False, max_explicit_copies=4),
    )
    reconfig = crusade(
        spec, library=figure2_library(),
        config=CrusadeConfig(reconfiguration=True, max_explicit_copies=4),
        baseline=baseline,
    )
    return baseline, reconfig


class TestCompare:
    def test_headline_numbers(self, figure2_pair):
        baseline, reconfig = figure2_pair
        diff = compare_results(baseline, reconfig)
        assert diff.savings > 0
        assert diff.savings_pct == pytest.approx(
            (baseline.cost - reconfig.cost) / baseline.cost * 100
        )

    def test_eliminated_types(self, figure2_pair):
        baseline, reconfig = figure2_pair
        diff = compare_results(baseline, reconfig)
        assert "F1" in diff.eliminated_types()

    def test_pe_counts(self, figure2_pair):
        baseline, reconfig = figure2_pair
        diff = compare_results(baseline, reconfig)
        base_f1, other_f1 = diff.pe_counts["F1"]
        assert base_f1 == 2 and other_f1 == 1

    def test_render(self, figure2_pair):
        baseline, reconfig = figure2_pair
        text = compare_results(baseline, reconfig).render()
        assert "saved" in text
        assert "F1" in text

    def test_rejects_different_systems(self, figure2_pair, small_library,
                                       tiny_spec, fast_config):
        baseline, _ = figure2_pair
        other = crusade(tiny_spec, library=small_library, config=fast_config)
        with pytest.raises(SpecificationError):
            compare_results(baseline, other)


class TestModeSharing:
    def test_figure2_sharing_structure(self, figure2_pair):
        _, reconfig = figure2_pair
        report = mode_sharing_report(reconfig)
        assert report.n_shared_devices == 1
        device = [d for d in report.devices if d.shared][0]
        # T1 is in both modes (replica); T2/T3 in one each.
        assert {"T1", "T2"} in device.graphs_per_mode
        assert {"T1", "T3"} in device.graphs_per_mode
        # Sharing avoided buying T3's circuit area outright.
        assert device.gates_avoided > 0
        assert ("T2", "T3") in report.sharing_pairs()

    def test_baseline_has_no_sharing(self, figure2_pair):
        baseline, _ = figure2_pair
        report = mode_sharing_report(baseline)
        assert report.n_shared_devices == 0
        assert report.total_gates_avoided == 0
        assert report.sharing_pairs() == []

    def test_reconfiguration_load_measured(self, figure2_pair):
        _, reconfig = figure2_pair
        report = mode_sharing_report(reconfig)
        assert report.reconfigurations >= 1
        assert report.boot_time_total > 0
        assert report.hyperperiod == pytest.approx(0.2)

    def test_render(self, figure2_pair):
        _, reconfig = figure2_pair
        text = mode_sharing_report(reconfig).render()
        assert "multiple modes" in text
        assert "mode 0" in text
