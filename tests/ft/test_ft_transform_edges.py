"""FT transformation: structural edge cases."""

import pytest

from repro import SystemSpec, Task, TaskGraph
from repro.graph.task import AssertionSpec, MemoryRequirement
from repro.ft.assertions import transform_graph_for_ft
from repro.ft.transparency import check_points


def mk_task(name, transparent=False, assertions=()):
    return Task(name=name, exec_times={"CPU": 1e-3},
                memory=MemoryRequirement(program=32),
                error_transparent=transparent,
                assertions=tuple(assertions))


class TestDiamondTransparency:
    def test_transparent_diamond_defers_to_single_sink(self):
        g = TaskGraph(name="g", period=1.0, deadline=0.5)
        for n in ("a", "b", "c", "d"):
            g.add_task(mk_task(n, transparent=True))
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        g.add_edge("b", "d")
        g.add_edge("c", "d")
        assert check_points(g) == ["d"]

    def test_one_opaque_branch_forces_its_check(self):
        g = TaskGraph(name="g", period=1.0, deadline=0.5)
        g.add_task(mk_task("a", transparent=True))
        g.add_task(mk_task("b", transparent=False))  # opaque branch
        g.add_task(mk_task("c", transparent=True))
        g.add_task(mk_task("d", transparent=True))
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        g.add_edge("b", "d")
        g.add_edge("c", "d")
        assert check_points(g) == ["b", "d"]


class TestTransformBookkeeping:
    def test_original_tasks_and_edges_preserved(self):
        g = TaskGraph(name="g", period=1.0, deadline=0.5)
        g.add_task(mk_task("a"))
        g.add_task(mk_task("b"))
        g.add_edge("a", "b", bytes_=128)
        out, *_ = transform_graph_for_ft(g, 0.9)
        assert "a" in out.tasks and "b" in out.tasks
        assert out.edge("a", "b").bytes_ == 128
        assert out.period == g.period
        assert out.deadline == g.deadline

    def test_check_task_hardware_footprint_scales(self):
        g = TaskGraph(name="g", period=1.0, deadline=0.5)
        g.add_task(Task(
            name="hw", exec_times={"FPGA": 1e-4}, area_gates=2000, pins=16,
            assertions=(AssertionSpec(name="crc", coverage=0.95,
                                      exec_times={"FPGA": 1e-5}),),
        ))
        out, assertions, _, _ = transform_graph_for_ft(g, 0.9)
        _, check_name = assertions[0]
        check = out.task(check_name)
        assert 0 < check.area_gates < 2000
        assert 0 < check.pins <= 16

    def test_transform_is_idempotent_on_counts(self):
        g = TaskGraph(name="g", period=1.0, deadline=0.5)
        g.add_task(mk_task("a"))
        out1, *_ = transform_graph_for_ft(g, 0.9)
        out2, *_ = transform_graph_for_ft(g, 0.9)
        assert set(out1.tasks) == set(out2.tasks)
        assert set(out1.edges) == set(out2.edges)
