"""Error transparency and the fault-detection transformation."""

import pytest

from repro import SystemSpec, Task, TaskGraph
from repro.graph.task import AssertionSpec, MemoryRequirement
from repro.ft.assertions import (
    ASSERT_SUFFIX,
    CMP_SUFFIX,
    DUP_SUFFIX,
    transform_graph_for_ft,
    transform_spec_for_ft,
)
from repro.ft.transparency import check_points, transparent_chain_savings


def task(name, transparent=False, assertions=()):
    return Task(
        name=name,
        exec_times={"CPU": 1e-3},
        memory=MemoryRequirement(program=64),
        error_transparent=transparent,
        assertions=tuple(assertions),
    )


def chain(names, transparent_map=None, assertion_map=None):
    transparent_map = transparent_map or {}
    assertion_map = assertion_map or {}
    g = TaskGraph(name="g", period=1.0, deadline=0.5)
    for n in names:
        g.add_task(task(
            n,
            transparent=transparent_map.get(n, False),
            assertions=assertion_map.get(n, ()),
        ))
    for a, b in zip(names, names[1:]):
        g.add_edge(a, b, bytes_=32)
    return g


class TestCheckPoints:
    def test_opaque_chain_checks_everything(self):
        g = chain(["a", "b", "c"])
        assert check_points(g) == ["a", "b", "c"]

    def test_transparent_chain_checks_only_sink(self):
        g = chain(["a", "b", "c"], transparent_map={"a": True, "b": True, "c": True})
        assert check_points(g) == ["c"]
        assert transparent_chain_savings(g) == 2

    def test_sink_always_checked_even_if_transparent(self):
        g = chain(["a"], transparent_map={"a": True})
        assert check_points(g) == ["a"]

    def test_mixed_chain(self):
        # a transparent -> b opaque -> c: a defers to b, b checked,
        # c (sink) checked.
        g = chain(["a", "b", "c"], transparent_map={"a": True})
        assert check_points(g) == ["b", "c"]


class TestTransformGraph:
    def test_assertion_added_when_available(self):
        spec = AssertionSpec(name="parity", coverage=0.95,
                             exec_times={"CPU": 1e-4}, comm_bytes=16)
        g = chain(["a"], assertion_map={"a": (spec,)})
        out, assertions, dups, saved = transform_graph_for_ft(g, 0.9)
        assert len(assertions) == 1
        checked, check = assertions[0]
        assert checked == "a"
        assert ASSERT_SUFFIX in check
        assert check in out.tasks
        assert (checked, check) in out.edges
        assert not dups

    def test_duplicate_and_compare_fallback(self):
        g = chain(["a"])
        out, assertions, dups, saved = transform_graph_for_ft(g, 0.9)
        assert not assertions
        assert dups == [("a", "a" + DUP_SUFFIX)]
        assert "a" + DUP_SUFFIX in out.tasks
        assert "a" + CMP_SUFFIX in out.tasks
        # Compare collates both versions.
        assert ("a", "a" + CMP_SUFFIX) in out.edges
        assert ("a" + DUP_SUFFIX, "a" + CMP_SUFFIX) in out.edges

    def test_duplicate_excludes_original(self):
        g = chain(["a"])
        out, *_ = transform_graph_for_ft(g, 0.9)
        dup = out.task("a" + DUP_SUFFIX)
        assert "a" in dup.exclusions

    def test_duplicate_inherits_predecessors(self):
        g = chain(["p", "a"], transparent_map={"p": True})
        out, assertions, dups, saved = transform_graph_for_ft(g, 0.9)
        # p defers; a duplicated; the duplicate re-reads p's output.
        assert ("p", "a" + DUP_SUFFIX) in out.edges

    def test_insufficient_coverage_falls_back_to_duplication(self):
        weak = AssertionSpec(name="w", coverage=0.5, exec_times={"CPU": 1e-4})
        g = chain(["a"], assertion_map={"a": (weak,)})
        out, assertions, dups, saved = transform_graph_for_ft(g, 0.99)
        assert not assertions
        assert dups

    def test_assertions_combine_for_coverage(self):
        a1 = AssertionSpec(name="a1", coverage=0.8, exec_times={"CPU": 1e-4})
        a2 = AssertionSpec(name="a2", coverage=0.8, exec_times={"CPU": 1e-4})
        g = chain(["a"], assertion_map={"a": (a1, a2)})
        # Combined: 1 - 0.2*0.2 = 0.96 >= 0.95.
        out, assertions, dups, saved = transform_graph_for_ft(g, 0.95)
        assert len(assertions) == 2
        assert not dups

    def test_transparency_reduces_added_tasks(self):
        opaque = chain(["a", "b", "c", "d"])
        transparent = chain(
            ["a", "b", "c", "d"],
            transparent_map={n: True for n in "abc"},
        )
        out_o, *_ = transform_graph_for_ft(opaque, 0.9)
        out_t, *_ = transform_graph_for_ft(transparent, 0.9)
        assert len(out_t) < len(out_o)

    def test_check_tasks_are_sinks_and_inherit_deadline(self):
        g = chain(["a"])
        out, *_ = transform_graph_for_ft(g, 0.9)
        cmp_name = "a" + CMP_SUFFIX
        assert cmp_name in out.sinks()
        assert out.effective_deadline(cmp_name) == out.deadline


class TestTransformSpec:
    def test_spec_level_bookkeeping(self):
        g1 = chain(["a", "b"])
        g2 = TaskGraph(name="h", period=1.0, deadline=0.5)
        g2.add_task(task("x", transparent=True))
        g2.add_task(task("y"))
        g2.add_edge("x", "y", bytes_=8)
        spec = SystemSpec("s", [g1, g2], unavailability={"g": 4.0})
        transform = transform_spec_for_ft(spec, 0.9)
        assert transform.spec.name == "s+ft"
        assert transform.n_duplicates == 3  # a, b, y (x defers)
        assert transform.checks_saved_by_transparency == 1
        assert transform.spec.unavailability == {"g": 4.0}
        assert transform.spec.total_tasks > spec.total_tasks

    def test_explicit_compatibility_preserved(self):
        g1 = chain(["a"])
        g2 = TaskGraph(name="h", period=1.0, deadline=0.5, est=0.5)
        g2.add_task(task("x"))
        spec = SystemSpec("s", [g1, g2], compatibility=[("g", "h")])
        transform = transform_spec_for_ft(spec, 0.9)
        assert transform.spec.compatible("g", "h") is True
