"""Fault-tolerance levels and FT-steered clustering (Section 6)."""

import pytest

from repro import SystemSpec, Task, TaskGraph
from repro.graph.task import AssertionSpec, MemoryRequirement
from repro.ft.clustering import fault_tolerance_levels, ft_cluster_spec


def task(name, wcet=1e-3, transparent=False, assertions=()):
    return Task(
        name=name,
        exec_times={"CPU": wcet},
        memory=MemoryRequirement(program=64),
        error_transparent=transparent,
        assertions=tuple(assertions),
    )


class TestFaultToleranceLevels:
    def test_transparent_task_carries_no_local_overhead(self):
        g = TaskGraph(name="g", period=1.0, deadline=0.5)
        g.add_task(task("a", transparent=True))
        levels = fault_tolerance_levels(g)
        assert levels["a"] == 0.0

    def test_duplicate_and_compare_costs_the_task_again(self):
        g = TaskGraph(name="g", period=1.0, deadline=0.5)
        g.add_task(task("a", wcet=2e-3))
        levels = fault_tolerance_levels(g)
        assert levels["a"] == pytest.approx(2e-3)

    def test_assertion_cheaper_than_duplication(self):
        cheap = AssertionSpec(name="p", coverage=0.95,
                              exec_times={"CPU": 1e-4})
        g = TaskGraph(name="g", period=1.0, deadline=0.5)
        g.add_task(task("asserted", wcet=2e-3, assertions=(cheap,)))
        g.add_task(task("duplicated", wcet=2e-3))
        levels = fault_tolerance_levels(g)
        assert levels["asserted"] == pytest.approx(1e-4)
        assert levels["duplicated"] > levels["asserted"]

    def test_levels_accumulate_downstream(self):
        g = TaskGraph(name="g", period=1.0, deadline=0.5)
        g.add_task(task("a", wcet=1e-3))
        g.add_task(task("b", wcet=2e-3))
        g.add_edge("a", "b")
        levels = fault_tolerance_levels(g)
        assert levels["a"] == pytest.approx(1e-3 + 2e-3)

    def test_branch_takes_max(self):
        g = TaskGraph(name="g", period=1.0, deadline=0.5)
        g.add_task(task("root", wcet=1e-3))
        g.add_task(task("light", wcet=1e-4))
        g.add_task(task("heavy", wcet=5e-3))
        g.add_edge("root", "light")
        g.add_edge("root", "heavy")
        levels = fault_tolerance_levels(g)
        assert levels["root"] == pytest.approx(1e-3 + 5e-3)


class TestFtClusterSpec:
    def test_growth_follows_ft_levels(self, small_library):
        # Fork where priority (deadline path) favours "fast" but the
        # FT level favours "costly" (no assertion -> duplicate).
        cheap = AssertionSpec(name="p", coverage=0.95, exec_times={"CPU": 1e-5})
        g = TaskGraph(name="g", period=1.0, deadline=0.5)
        g.add_task(task("root"))
        g.add_task(task("fast", wcet=3e-3, assertions=(cheap,)))
        g.add_task(task("costly", wcet=2e-3))
        g.add_edge("root", "fast", bytes_=64)
        g.add_edge("root", "costly", bytes_=64)
        spec = SystemSpec("s", [g])
        result = ft_cluster_spec(spec, small_library, max_cluster_size=2)
        root_cluster = result.cluster_of("g", "root")
        # FT levels: fast ~1e-5, costly ~2e-3 -> costly joins root.
        assert "costly" in root_cluster.task_names

    def test_every_task_clustered(self, small_library, synthetic_spec):
        from repro import default_library

        lib = default_library()
        result = ft_cluster_spec(synthetic_spec, lib)
        clustered = {t for c in result.clusters.values() for t in c.task_names}
        expected = {
            t
            for n in synthetic_spec.graph_names()
            for t in synthetic_spec.graph(n).tasks
        }
        assert clustered == expected
