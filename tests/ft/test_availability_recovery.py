"""Markov availability analysis and spare allocation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import DependabilityError, SystemSpec, Task, TaskGraph
from repro.arch.architecture import Architecture
from repro.cluster.clustering import trivial_clustering
from repro.ft.availability import (
    ServiceModule,
    minutes_per_year,
    module_unavailability,
    steady_state_unavailability,
    system_unavailability,
)
from repro.ft.recovery import allocate_spares, service_modules_of
from repro.graph.task import MemoryRequirement


class TestMarkovModel:
    def test_zero_failure_rate_is_perfect(self):
        assert steady_state_unavailability(2, 1, 0.0, 0.5) == 0.0

    def test_spares_improve_availability(self):
        lam, mu = 1e-4, 0.5
        u0 = steady_state_unavailability(4, 0, lam, mu)
        u1 = steady_state_unavailability(4, 1, lam, mu)
        u2 = steady_state_unavailability(4, 2, lam, mu)
        assert u0 > u1 > u2 > 0.0

    def test_faster_repair_improves_availability(self):
        lam = 1e-4
        slow = steady_state_unavailability(2, 1, lam, 0.1)
        fast = steady_state_unavailability(2, 1, lam, 1.0)
        assert fast < slow

    def test_single_unit_no_spare_closed_form(self):
        # Classic two-state chain: U = lambda / (lambda + mu).
        lam, mu = 1e-3, 0.5
        expected = lam / (lam + mu)
        assert steady_state_unavailability(1, 0, lam, mu) == pytest.approx(expected)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(DependabilityError):
            steady_state_unavailability(0, 0, 1e-4, 0.5)
        with pytest.raises(DependabilityError):
            steady_state_unavailability(1, 0, 1e-4, 0.0)

    @settings(max_examples=30)
    @given(
        n=st.integers(min_value=1, max_value=6),
        s=st.integers(min_value=0, max_value=4),
        fit=st.floats(min_value=1.0, max_value=10_000.0),
    )
    def test_unavailability_is_a_probability(self, n, s, fit):
        module = ServiceModule("m", n_active=n, spares=s, fit_per_unit=fit)
        u = module_unavailability(module)
        assert 0.0 <= u < 1.0

    def test_system_series_composition(self):
        m1 = ServiceModule("a", 1, 0, 500.0)
        m2 = ServiceModule("b", 1, 0, 500.0)
        u1 = module_unavailability(m1)
        combined = system_unavailability([m1, m2])
        assert combined == pytest.approx(1 - (1 - u1) ** 2)
        assert combined > u1

    def test_minutes_per_year(self):
        assert minutes_per_year(0.0) == 0.0
        assert minutes_per_year(1.0) == pytest.approx(365.25 * 24 * 60)


def build_allocated_arch(small_library, n_graphs=2):
    graphs = []
    for i in range(n_graphs):
        g = TaskGraph(name="g%d" % i, period=1.0, deadline=0.5)
        g.add_task(Task(name="g%d.t" % i, exec_times={"CPU": 1e-3},
                        memory=MemoryRequirement(program=64)))
        graphs.append(g)
    spec = SystemSpec(
        "s", graphs,
        unavailability={g.name: 4.0 for g in graphs},
    )
    clustering = trivial_clustering(spec, small_library)
    arch = Architecture(small_library)
    pe = arch.new_pe(small_library.pe_type("CPU"))
    for cluster in clustering.clusters.values():
        arch.allocate_cluster(cluster.name, pe.id, 0, memory=cluster.memory)
    return spec, clustering, arch


class TestServiceModules:
    def test_grouped_by_pe_type(self, small_library):
        spec, clustering, arch = build_allocated_arch(small_library)
        arch.new_pe(small_library.pe_type("CPU"))
        arch.new_pe(small_library.pe_type("FPGA"))
        modules = service_modules_of(arch)
        assert set(modules) == {"CPU", "FPGA"}
        assert modules["CPU"].n_active == 2
        assert modules["FPGA"].n_active == 1

    def test_mttr_passed_through(self, small_library):
        spec, clustering, arch = build_allocated_arch(small_library)
        modules = service_modules_of(arch, mttr_hours=5.0)
        assert modules["CPU"].mttr_hours == 5.0


class TestSpareAllocation:
    def test_meets_requirements(self, small_library):
        spec, clustering, arch = build_allocated_arch(small_library)
        allocation = allocate_spares(arch, clustering, spec)
        assert allocation.met
        for name in spec.graph_names():
            assert allocation.downtime_minutes(name) <= spec.unavailability[name]

    def test_spares_added_for_tight_requirement(self, small_library):
        spec, clustering, arch = build_allocated_arch(small_library)
        tight = SystemSpec(
            "s2",
            [spec.graph(n) for n in spec.graph_names()],
            unavailability={n: 0.05 for n in spec.graph_names()},
        )
        allocation = allocate_spares(arch, clustering, tight)
        assert allocation.total_spares() >= 1
        assert allocation.spare_cost >= small_library.pe_type("CPU").cost

    def test_spare_budget_exhaustion_reported(self, small_library):
        spec, clustering, arch = build_allocated_arch(small_library)
        impossible = SystemSpec(
            "s3",
            [spec.graph(n) for n in spec.graph_names()],
            # Below the spare-less unavailability (~0.5 min/year for a
            # 500-FIT part with 2 h MTTR), but spares are forbidden.
            unavailability={n: 0.05 for n in spec.graph_names()},
        )
        allocation = allocate_spares(arch, clustering, impossible, max_spares=0)
        assert not allocation.met
        assert allocation.total_spares() == 0

    def test_no_requirements_no_spares(self, small_library):
        spec, clustering, arch = build_allocated_arch(small_library)
        free = SystemSpec("s4", [spec.graph(n) for n in spec.graph_names()])
        allocation = allocate_spares(arch, clustering, free)
        assert allocation.met
        assert allocation.total_spares() == 0
