"""Architecture validator: each check fires on its targeted corruption."""

import pytest

from repro import DelayPolicy
from repro.arch.architecture import Architecture
from repro.arch.validate import validate_architecture
from repro.cluster.clustering import Cluster, ClusteringResult
from repro.graph.task import MemoryRequirement


def clustering_with(*clusters):
    return ClusteringResult(
        clusters={c.name: c for c in clusters},
        task_to_cluster={(c.graph, t): c.name
                         for c in clusters for t in c.task_names},
    )


def make_cluster(name, gates=100, pins=4):
    return Cluster(name=name, graph="g", task_names=[name + ".t"],
                   allowed_pe_types={"FPGA"}, area_gates=gates, pins=pins,
                   memory=MemoryRequirement())


@pytest.fixture
def consistent(small_library):
    arch = Architecture(small_library)
    fpga = arch.new_pe(small_library.pe_type("FPGA"))
    cluster = make_cluster("c0")
    arch.allocate_cluster("c0", fpga.id, 0, gates=100, pins=4)
    return arch, clustering_with(cluster), fpga


class TestDetections:
    def test_clean_architecture_passes(self, consistent):
        arch, clustering, _ = consistent
        assert validate_architecture(arch, clustering, policy=DelayPolicy()).ok

    def test_allocation_table_mismatch(self, consistent):
        arch, clustering, fpga = consistent
        arch.cluster_alloc["c0"] = (fpga.id, 0)
        fpga.cluster_modes["c0"] = 5  # corrupt the PE side
        report = validate_architecture(arch, clustering)
        assert any("disagree" in v for v in report.violations)

    def test_dangling_allocation(self, consistent):
        arch, clustering, fpga = consistent
        arch.cluster_alloc["ghost"] = ("NOPE#0", 0)
        report = validate_architecture(arch, clustering)
        assert any("missing PE" in v for v in report.violations)

    def test_pe_holding_unlisted_cluster(self, consistent):
        arch, clustering, fpga = consistent
        del arch.cluster_alloc["c0"]
        report = validate_architecture(arch, clustering)
        assert any("allocation table" in v for v in report.violations)

    def test_gate_counter_mismatch(self, consistent):
        arch, clustering, fpga = consistent
        fpga.mode(0).gates_used += 7
        report = validate_architecture(arch, clustering)
        assert any("gate counter" in v for v in report.violations)

    def test_capacity_violation(self, consistent, small_library):
        arch, clustering, fpga = consistent
        # Inflate the cluster's demand beyond the ERUF cap coherently.
        clustering.clusters["c0"].area_gates = 5000
        fpga.mode(0).gates_used = 5000
        report = validate_architecture(arch, clustering, policy=DelayPolicy())
        assert any("ERUF" in v for v in report.violations)

    def test_replica_of_unallocated_cluster(self, consistent):
        arch, clustering, fpga = consistent
        fpga.replica_modes["ghost"] = {0}
        report = validate_architecture(arch, clustering)
        assert any("replicates" in v for v in report.violations)

    def test_link_attaching_missing_pe(self, consistent, small_library):
        arch, clustering, fpga = consistent
        link = arch.new_link(small_library.link_type("bus"))
        link.attached.add("GONE#9")
        report = validate_architecture(arch, clustering)
        assert any("missing PE" in v for v in report.violations)
