"""Architecture model: instances, modes, replicas, connectivity, cost."""

import pytest

from repro import AllocationError
from repro.arch.architecture import Architecture
from repro.arch.cost import cost_breakdown
from repro.graph.task import MemoryRequirement


@pytest.fixture
def arch(small_library):
    return Architecture(small_library)


class TestPEInstances:
    def test_ids_are_sequential(self, arch, small_library):
        a = arch.new_pe(small_library.pe_type("CPU"))
        b = arch.new_pe(small_library.pe_type("CPU"))
        assert a.id == "CPU#0"
        assert b.id == "CPU#1"

    def test_lookup(self, arch, small_library):
        pe = arch.new_pe(small_library.pe_type("FPGA"))
        assert arch.pe(pe.id) is pe
        with pytest.raises(AllocationError):
            arch.pe("nope")

    def test_processor_flags(self, arch, small_library):
        cpu = arch.new_pe(small_library.pe_type("CPU"))
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        assert cpu.is_processor and not cpu.is_programmable
        assert fpga.is_programmable and not fpga.is_processor

    def test_remove_empty_pe_and_links(self, arch, small_library):
        a = arch.new_pe(small_library.pe_type("CPU"))
        b = arch.new_pe(small_library.pe_type("CPU"))
        arch.connect(a.id, b.id, small_library.link_type("bus"))
        arch.remove_pe(b.id)
        assert b.id not in arch.pes
        # Link with a single remaining port survives; fully empty links
        # would be dropped.
        assert all(l.ports_used >= 1 for l in arch.links.values())

    def test_remove_pe_with_clusters_rejected(self, arch, small_library):
        pe = arch.new_pe(small_library.pe_type("CPU"))
        arch.allocate_cluster("c0", pe.id, 0, memory=MemoryRequirement(program=10))
        with pytest.raises(AllocationError):
            arch.remove_pe(pe.id)


class TestAllocation:
    def test_allocate_and_lookup(self, arch, small_library):
        pe = arch.new_pe(small_library.pe_type("FPGA"))
        arch.allocate_cluster("c0", pe.id, 0, gates=100, pins=4)
        assert arch.placement_of("c0") == (pe.id, 0)
        assert arch.is_allocated("c0")
        assert pe.mode(0).gates_used == 100

    def test_double_allocation_rejected(self, arch, small_library):
        pe = arch.new_pe(small_library.pe_type("FPGA"))
        arch.allocate_cluster("c0", pe.id, 0)
        with pytest.raises(AllocationError):
            arch.allocate_cluster("c0", pe.id, 0)

    def test_deallocate_rolls_back_resources(self, arch, small_library):
        pe = arch.new_pe(small_library.pe_type("FPGA"))
        arch.allocate_cluster("c0", pe.id, 0, gates=100, pins=4)
        arch.deallocate_cluster("c0", gates=100, pins=4)
        assert not arch.is_allocated("c0")
        assert pe.mode(0).gates_used == 0
        assert pe.mode(0).pins_used == 0

    def test_new_mode_only_for_programmable(self, arch, small_library):
        cpu = arch.new_pe(small_library.pe_type("CPU"))
        with pytest.raises(AllocationError):
            cpu.new_mode()

    def test_modes_accumulate(self, arch, small_library):
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        mode = fpga.new_mode()
        assert mode.index == 1
        arch.allocate_cluster("c0", fpga.id, 1, gates=50)
        assert fpga.mode_of_cluster("c0") == 1

    def test_compact_pe_modes(self, arch, small_library):
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        fpga.new_mode()
        fpga.new_mode()
        arch.allocate_cluster("c0", fpga.id, 2, gates=50)
        arch.compact_pe_modes(fpga.id)
        assert fpga.n_modes == 1
        assert arch.placement_of("c0") == (fpga.id, 0)


class TestReplicas:
    def test_replica_accounting(self, arch, small_library):
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        fpga.new_mode()
        arch.allocate_cluster("c0", fpga.id, 0, gates=100, pins=4)
        fpga.add_replica("c0", 1, gates=100, pins=4)
        assert fpga.modes_of_cluster("c0") == (0, 1)
        assert fpga.mode(1).gates_used == 100
        assert fpga.has_replicas

    def test_replica_into_primary_rejected(self, arch, small_library):
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        arch.allocate_cluster("c0", fpga.id, 0, gates=100)
        with pytest.raises(AllocationError):
            fpga.add_replica("c0", 0)

    def test_duplicate_replica_rejected(self, arch, small_library):
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        fpga.new_mode()
        arch.allocate_cluster("c0", fpga.id, 0, gates=100)
        fpga.add_replica("c0", 1, gates=100)
        with pytest.raises(AllocationError):
            fpga.add_replica("c0", 1, gates=100)

    def test_remove_cluster_drops_replicas(self, arch, small_library):
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        fpga.new_mode()
        arch.allocate_cluster("c0", fpga.id, 0, gates=100, pins=2)
        fpga.add_replica("c0", 1, gates=100, pins=2)
        arch.deallocate_cluster("c0", gates=100, pins=2)
        assert fpga.mode(1).gates_used == 0
        assert not fpga.has_replicas

    def test_compact_remaps_replicas(self, arch, small_library):
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        fpga.new_mode()
        fpga.new_mode()  # mode 2
        arch.allocate_cluster("c0", fpga.id, 2, gates=50)
        arch.allocate_cluster("c1", fpga.id, 0, gates=20)
        fpga.add_replica("c1", 2, gates=20)
        arch.compact_pe_modes(fpga.id)  # drops empty mode 1
        assert fpga.n_modes == 2
        assert fpga.modes_of_cluster("c1") == (0, 1)


class TestConnectivity:
    def test_connect_creates_link(self, arch, small_library):
        a = arch.new_pe(small_library.pe_type("CPU"))
        b = arch.new_pe(small_library.pe_type("CPU"))
        link = arch.connect(a.id, b.id, small_library.link_type("bus"))
        assert link.connects(a.id, b.id)
        assert arch.n_links == 1

    def test_connect_reuses_existing(self, arch, small_library):
        a = arch.new_pe(small_library.pe_type("CPU"))
        b = arch.new_pe(small_library.pe_type("CPU"))
        bus = small_library.link_type("bus")
        l1 = arch.connect(a.id, b.id, bus)
        l2 = arch.connect(a.id, b.id, bus)
        assert l1 is l2
        assert arch.n_links == 1

    def test_connect_extends_partial(self, arch, small_library):
        a = arch.new_pe(small_library.pe_type("CPU"))
        b = arch.new_pe(small_library.pe_type("CPU"))
        c = arch.new_pe(small_library.pe_type("CPU"))
        bus = small_library.link_type("bus")
        arch.connect(a.id, b.id, bus)
        link = arch.connect(a.id, c.id, bus)
        assert link.ports_used == 3
        assert arch.n_links == 1

    def test_find_link_between(self, arch, small_library):
        a = arch.new_pe(small_library.pe_type("CPU"))
        b = arch.new_pe(small_library.pe_type("CPU"))
        assert arch.find_link_between(a.id, b.id) is None
        arch.connect(a.id, b.id, small_library.link_type("bus"))
        assert arch.find_link_between(a.id, b.id) is not None


class TestCost:
    def test_pe_and_link_costs_sum(self, arch, small_library):
        cpu = arch.new_pe(small_library.pe_type("CPU"))
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        arch.connect(cpu.id, fpga.id, small_library.link_type("bus"))
        # CPU $50, FPGA $100, bus $5 (no per-port cost in fixture).
        assert arch.cost == pytest.approx(155.0)

    def test_memory_bank_added_for_processor_demand(self, arch, small_library):
        cpu = arch.new_pe(small_library.pe_type("CPU"))
        arch.allocate_cluster(
            "c0", cpu.id, 0, memory=MemoryRequirement(program=1024)
        )
        assert cpu.memory_bank().cost == 20.0
        assert cpu.cost == pytest.approx(70.0)

    def test_interface_cost_included(self, arch, small_library):
        arch.interface_cost = 12.5
        assert arch.cost == pytest.approx(12.5)

    def test_breakdown_totals(self, arch, small_library):
        cpu = arch.new_pe(small_library.pe_type("CPU"))
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        arch.allocate_cluster("c0", cpu.id, 0, memory=MemoryRequirement(program=1))
        arch.connect(cpu.id, fpga.id, small_library.link_type("bus"))
        arch.interface_cost = 3.0
        breakdown = cost_breakdown(arch)
        assert breakdown.total == pytest.approx(arch.cost)
        assert breakdown.processors == 50.0
        assert breakdown.ppes == 100.0
        assert breakdown.memory == 20.0
        assert breakdown.interface == 3.0

    def test_merge_potential(self, arch, small_library):
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        cpu = arch.new_pe(small_library.pe_type("CPU"))
        arch.connect(cpu.id, fpga.id, small_library.link_type("bus"))
        # 1 PPE + 1 link.
        assert arch.merge_potential() == 2


class TestClone:
    def test_clone_is_independent(self, arch, small_library):
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        fpga.new_mode()
        arch.allocate_cluster("c0", fpga.id, 1, gates=50)
        fpga.add_replica("c0", 0, gates=50)
        copy = arch.clone()
        copy.deallocate_cluster("c0", gates=50)
        assert arch.is_allocated("c0")
        assert arch.pe(fpga.id).mode(1).gates_used == 50
        assert not copy.is_allocated("c0")

    def test_clone_preserves_counters(self, arch, small_library):
        arch.new_pe(small_library.pe_type("CPU"))
        copy = arch.clone()
        new = copy.new_pe(small_library.pe_type("CPU"))
        assert new.id == "CPU#1"
