"""Cost breakdown categories and architecture metric views."""

import pytest

from repro.arch.architecture import Architecture
from repro.arch.cost import CostBreakdown, cost_breakdown
from repro.graph.task import MemoryRequirement


class TestCostBreakdown:
    def test_as_dict_includes_total(self):
        breakdown = CostBreakdown(
            processors=10.0, asics=5.0, ppes=20.0, memory=2.0,
            links=3.0, interface=1.0,
        )
        payload = breakdown.as_dict()
        assert payload["total"] == pytest.approx(41.0)
        assert set(payload) == {
            "processors", "asics", "ppes", "memory", "links",
            "interface", "total",
        }

    def test_catalog_categories(self, library):
        arch = Architecture(library)
        arch.new_pe(library.pe_type("MC68040"))
        arch.new_pe(library.pe_type("ASIC03"))
        arch.new_pe(library.pe_type("XC4025"))
        breakdown = cost_breakdown(arch)
        assert breakdown.processors == library.pe_type("MC68040").cost
        assert breakdown.asics == library.pe_type("ASIC03").cost
        assert breakdown.ppes == library.pe_type("XC4025").cost
        assert breakdown.memory == 0.0

    def test_cplds_count_as_ppes(self, library):
        arch = Architecture(library)
        arch.new_pe(library.pe_type("XC9536"))
        assert cost_breakdown(arch).ppes == library.pe_type("XC9536").cost


class TestArchitectureViews:
    def test_programmable_pes_sorted(self, library):
        arch = Architecture(library)
        arch.new_pe(library.pe_type("XC4025"))
        arch.new_pe(library.pe_type("AT6005"))
        arch.new_pe(library.pe_type("MC68360"))
        ids = [p.id for p in arch.programmable_pes()]
        assert ids == sorted(ids)
        assert all("MC68360" not in i for i in ids)

    def test_total_modes(self, library):
        arch = Architecture(library)
        fpga = arch.new_pe(library.pe_type("XC4025"))
        fpga.new_mode()
        arch.new_pe(library.pe_type("AT6005"))
        assert arch.total_modes() == 3

    def test_summary_format(self, library):
        arch = Architecture(library)
        arch.new_pe(library.pe_type("MC68360"))
        text = arch.summary()
        assert "1 PEs" in text and "cost $" in text

    def test_processor_memory_bank_escalation(self, library):
        from repro.units import MB

        arch = Architecture(library)
        cpu = arch.new_pe(library.pe_type("MC68360"))
        arch.allocate_cluster(
            "small", cpu.id, 0, memory=MemoryRequirement(program=1 * MB)
        )
        assert cpu.memory_bank().size_bytes == 16 * MB
        arch.allocate_cluster(
            "big", cpu.id, 0, memory=MemoryRequirement(data=20 * MB)
        )
        assert cpu.memory_bank().size_bytes == 32 * MB

    def test_memory_overflow_raises_on_bank_lookup(self, library):
        from repro import AllocationError
        from repro.units import MB

        arch = Architecture(library)
        cpu = arch.new_pe(library.pe_type("MC68360"))
        arch.allocate_cluster(
            "huge", cpu.id, 0, memory=MemoryRequirement(data=100 * MB)
        )
        with pytest.raises(AllocationError):
            cpu.memory_bank()
