"""Framing: canonical round-trips, escape hatches, torn frames.

Every test that touches a live connection uses a unix socketpair --
one peer scripted byte-by-byte -- so the half-written and oversize
faults are exact, not timing-dependent.
"""

from __future__ import annotations

import socket
import struct

import pytest

from repro.exec.frames import (
    MAX_FRAME_BYTES,
    FrameConnection,
    FrameError,
    RecvTimeout,
    decode_body,
    encode_frame,
)


def frame_pair():
    """Two connected FrameConnections (left, right)."""
    a, b = socket.socketpair()
    return FrameConnection(a, body_timeout_s=0.5), \
        FrameConnection(b, body_timeout_s=0.5)


def test_round_trip_preserves_json_values():
    for message in (
        {"b": 2, "a": 1},
        ["x", 1, 2.5, None, True],
        "plain string",
        {"nested": {"list": [1, [2, [3]]]}},
        "unicode: éµ",
    ):
        assert decode_body(encode_frame(message)[4:]) == message


def test_encoding_is_canonical():
    assert encode_frame({"b": 2, "a": 1}) == encode_frame({"a": 1, "b": 2})
    body = encode_frame({"a": 1, "b": 2})[4:]
    assert body == b'{"a":1,"b":2}'


def test_tuples_come_back_as_lists():
    assert decode_body(encode_frame(("bound", 3, (1, 2)))[4:]) == \
        ["bound", 3, [1, 2]]


def test_bytes_escape_hatch_round_trips():
    blob = bytes(range(256)) * 3
    assert decode_body(encode_frame({"blob": blob})[4:]) == {"blob": blob}


def test_pickle_escape_hatch_round_trips_opaque_objects():
    message = {"when": complex(1, 2), "items": [{1, 2, 3}]}
    decoded = decode_body(encode_frame(message)[4:])
    assert decoded == {"when": complex(1, 2), "items": [{1, 2, 3}]}


def test_oversize_frame_is_refused_on_send(monkeypatch):
    from repro.exec import frames

    monkeypatch.setattr(frames, "MAX_FRAME_BYTES", 64)
    with pytest.raises(FrameError):
        encode_frame({"blob": b"z" * 128})


def test_oversize_header_is_refused_on_recv():
    left, right = frame_pair()
    try:
        right._sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameError):
            left.recv(timeout=0.5)
    finally:
        left.close()
        right.close()


def test_connection_send_recv_round_trip():
    left, right = frame_pair()
    try:
        left.send(("job", "j1", 1, {"params": {}}))
        assert right.recv(timeout=1.0) == ["job", "j1", 1, {"params": {}}]
        right.send(("ok", "j1", {"echo": "pong"}))
        assert left.recv(timeout=1.0) == ["ok", "j1", {"echo": "pong"}]
    finally:
        left.close()
        right.close()


def test_recv_timeout_when_no_frame_starts():
    left, right = frame_pair()
    try:
        with pytest.raises(RecvTimeout):
            left.recv(timeout=0.05)
    finally:
        left.close()
        right.close()


def test_clean_close_at_boundary_is_eof():
    left, right = frame_pair()
    right.close()
    try:
        with pytest.raises(EOFError):
            left.recv(timeout=0.5)
    finally:
        left.close()


def test_half_written_frame_is_a_typed_frame_error_not_a_hang():
    """A peer that stalls mid-frame trips the body timeout: recv
    raises FrameError within body_timeout_s instead of waiting on
    bytes that will never come."""
    import time

    left, right = frame_pair()
    try:
        encoded = encode_frame({"payload": "x" * 64})
        right._sock.sendall(encoded[: len(encoded) // 2])  # ...then stall
        started = time.monotonic()
        with pytest.raises(FrameError, match="stalled"):
            left.recv(timeout=5.0)
        assert time.monotonic() - started < 3.0
    finally:
        left.close()
        right.close()


def test_close_mid_frame_is_a_torn_frame():
    left, right = frame_pair()
    encoded = encode_frame({"payload": "y" * 64})
    right._sock.sendall(encoded[: len(encoded) // 2])
    right.close()
    try:
        with pytest.raises(FrameError, match="mid-frame"):
            left.recv(timeout=0.5)
    finally:
        left.close()


def test_exact_reads_leave_the_next_frame_for_the_next_recv():
    """recv never over-reads: two frames sent back-to-back arrive as
    two distinct messages, and the fd stays poll()-able in between."""
    left, right = frame_pair()
    try:
        right._sock.sendall(encode_frame({"n": 1}) + encode_frame({"n": 2}))
        assert left.recv(timeout=1.0) == {"n": 1}
        assert left.poll(0.5)
        assert left.recv(timeout=1.0) == {"n": 2}
    finally:
        left.close()
        right.close()
