"""SupervisedWorker: one state machine, typed outcomes, both transports.

Each scenario runs against real worker processes over the pipe AND
socket transports -- the crash/timeout/error verdicts asserted here
were produced by actual process deaths, hangs and tracebacks.
"""

from __future__ import annotations

import pytest

from repro.exec import (
    CRASH,
    CRASH_DETAIL,
    ERROR,
    OK,
    SupervisedWorker,
    TIMEOUT,
    TIMEOUT_DETAIL,
    make_job_transport,
)
from repro.obs.trace import Tracer

from tests.exec.test_transport import JOB_TARGET, selftest_job

TRANSPORTS = ["pipe", "socket"]


@pytest.mark.parametrize("kind", TRANSPORTS)
def test_clean_attempt_is_ok_with_the_result(kind):
    worker = SupervisedWorker(make_job_transport(JOB_TARGET, kind))
    try:
        outcome = worker.attempt("j1", 1, selftest_job("j1"), timeout_s=60.0)
        assert outcome.ok and outcome.kind == OK
        assert outcome.value["echo"] == "ping"
        assert worker.jobs_done == 1 and worker.restarts == 0
    finally:
        worker.stop()


@pytest.mark.parametrize("kind", TRANSPORTS)
def test_crash_is_typed_and_the_worker_respawned(kind):
    tracer = Tracer()
    worker = SupervisedWorker(
        make_job_transport(JOB_TARGET, kind), tracer=tracer
    )
    try:
        outcome = worker.attempt(
            "j1", 1, selftest_job("j1", inject={"crash_attempts": 1}),
            timeout_s=60.0,
        )
        assert outcome.kind == CRASH and outcome.value == CRASH_DETAIL
        assert worker.restarts == 1 and worker.alive
        # The respawned worker is immediately usable.
        again = worker.attempt("j2", 1, selftest_job("j2"), timeout_s=60.0)
        assert again.ok
        counters = tracer.counters.as_dict()
        assert counters["exec.workers.restarts"] == 1
        assert counters["exec.workers.transport.%s" % kind] >= 1
    finally:
        worker.stop()


@pytest.mark.parametrize("kind", TRANSPORTS)
def test_error_is_typed_with_the_traceback(kind):
    worker = SupervisedWorker(make_job_transport(JOB_TARGET, kind))
    try:
        outcome = worker.attempt(
            "j1", 1, selftest_job("j1", inject={"error_attempts": 1}),
            timeout_s=60.0,
        )
        assert outcome.kind == ERROR
        assert "injected failure" in outcome.value
        assert worker.alive  # an error is the job's fault, not the worker's
    finally:
        worker.stop()


@pytest.mark.parametrize("kind", TRANSPORTS)
def test_timeout_kills_the_hung_worker_and_is_typed(kind):
    worker = SupervisedWorker(make_job_transport(JOB_TARGET, kind))
    try:
        outcome = worker.attempt(
            "j1", 1,
            selftest_job("j1", inject={
                "hang_attempts": 1, "hang_seconds": 60.0,
            }),
            timeout_s=1.0,
        )
        assert outcome.kind == TIMEOUT and outcome.value == TIMEOUT_DETAIL
        assert worker.restarts == 1 and worker.alive
    finally:
        worker.stop()


def test_submit_poll_is_the_nonblocking_face():
    import time

    worker = SupervisedWorker(make_job_transport(JOB_TARGET, "pipe"))
    try:
        worker.spawn()
        worker.submit("j1", 1, selftest_job("j1"))
        assert worker.busy
        deadline = time.monotonic() + 30.0
        outcome = None
        while outcome is None and time.monotonic() < deadline:
            outcome = worker.poll(time.monotonic())
            time.sleep(0.01)
        assert outcome is not None and outcome.ok
        assert not worker.busy
    finally:
        worker.stop()


def test_double_submit_is_refused():
    worker = SupervisedWorker(make_job_transport(JOB_TARGET, "pipe"))
    try:
        worker.spawn()
        worker.submit("j1", 1, selftest_job("j1"))
        with pytest.raises(RuntimeError):
            worker.submit("j2", 1, selftest_job("j2"))
    finally:
        worker.stop()


def test_describe_reports_supervision_state():
    worker = SupervisedWorker(make_job_transport(JOB_TARGET, "pipe"))
    try:
        info = worker.describe()
        assert info["kind"] == "pipe"
        assert info["restarts"] == 0 and info["jobs_done"] == 0
        assert info["busy"] is False
    finally:
        worker.stop()
