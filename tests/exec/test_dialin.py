"""Remote dial-in: ``repro worker --connect`` joins real pools.

These spawn the actual CLI as a subprocess against a listening pool
on localhost, so the hello/welcome handshake, role assignment and
clean-release paths are exercised end to end.
"""

from __future__ import annotations

import asyncio
import subprocess
import sys
import time

import pytest

from repro.exec import connect_and_serve
from repro.obs.trace import Tracer

from tests.exec.test_transport import selftest_job


def start_worker(port):
    """One ``repro worker --connect`` subprocess against ``port``."""
    import os

    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", "127.0.0.1:%d" % port],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )


def test_remote_worker_joins_a_service_pool_and_runs_jobs():
    from repro.service.pool import ShardPool

    tracer = Tracer()

    async def main():
        pool = ShardPool(
            workers=0, worker_port=0, worker_host="127.0.0.1",
            tracer=tracer,
        )
        await pool.start()
        proc = start_worker(pool.listen_port)
        try:
            deadline = time.monotonic() + 20.0
            while pool.alive_workers == 0:
                assert time.monotonic() < deadline, "worker never joined"
                await asyncio.sleep(0.05)
            verdict = await pool.submit("j1", selftest_job("j1"))
            assert verdict["status"] == "done"
            assert verdict["result"]["echo"] == "ping"
            info = pool.worker_info()
            assert len(info) == 1 and info[0]["kind"] == "socket"
            assert info[0]["remote"] and info[0]["jobs_done"] == 1
        finally:
            await pool.drain()
            assert proc.wait(timeout=20.0) == 0  # released cleanly
        counters = tracer.counters.as_dict()
        assert counters["service.workers.joined"] == 1
        assert counters["exec.workers.transport.socket"] == 1

    asyncio.run(main())


def test_remote_worker_widens_a_scorer_pool():
    """A dialed-in scorer is adopted at the next score() call and the
    records stay identical to a local-only pool's."""
    from repro.obs.trace import Tracer as T
    from repro.perf.procpool import ProcessPoolScorer
    from tests.perf.test_procpool import _direct_score_setup

    payload, options = _direct_score_setup()

    with ProcessPoolScorer(2, batch=2) as local_scorer:
        token = local_scorer.begin_cluster(payload)
        reference = local_scorer.score(token, options, "cheapest", T())

    scorer = ProcessPoolScorer(
        2, batch=2, worker_port=0, worker_host="127.0.0.1"
    )
    proc = None
    try:
        scorer._ensure_started()
        proc = start_worker(scorer._listener.port)
        deadline = time.monotonic() + 20.0
        while not scorer._dialed:
            assert time.monotonic() < deadline, "scorer never dialed in"
            time.sleep(0.05)
        token = scorer.begin_cluster(payload)
        records = scorer.score(token, options, "cheapest", T())
        assert scorer.pool_size == 3  # 2 local + 1 adopted
        assert records == reference
    finally:
        scorer.close()
        if proc is not None:
            assert proc.wait(timeout=20.0) == 0

    # Selection-affecting records are transport-independent.
    assert all(len(record) == 4 for record in reference)


def test_connect_to_a_dead_port_fails_fast_with_exit_1():
    import socket

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()  # nothing listens here now
    lines = []
    code = connect_and_serve("127.0.0.1", port, log=lines.append)
    assert code == 1
    assert any("cannot connect" in line for line in lines)


def test_worker_cli_rejects_a_malformed_address():
    from repro.cli import main

    assert main(["worker", "--connect", "not-an-address"]) == 2


def test_worker_cli_requires_connect():
    from repro.cli import build_parser

    with pytest.raises(SystemExit):
        build_parser().parse_args(["worker"])
