"""Transport contract tests: selection, escalation, pipe lifecycle.

This file owns THE SIGTERM -> SIGKILL escalation suite: every layer's
kill delegates to :func:`repro.exec.transport.terminate_process`, so a
wedged SIGTERM-masking worker is exercised here once instead of once
per pool.
"""

from __future__ import annotations

import time

import pytest

from repro.campaign.jobs import Job
from repro.exec import transport as transport_mod
from repro.exec import (
    PipeTransport,
    SocketTransport,
    TransportDead,
    job_worker_main,
    make_job_transport,
    resolve_transport_name,
)

JOB_TARGET = "repro.campaign.jobs:execute_job"


def selftest_job(job_id, inject=None, value="ping"):
    """A selftest job payload, optionally fault-injected."""
    params = {"value": value}
    if inject:
        params["inject"] = inject
    return Job(
        id=job_id, kind="selftest", example="A1TR", scale=0.05,
        variant="default", config={}, params=params,
    ).to_dict()


# ----------------------------------------------------------------------
# transport selection + kill switch
# ----------------------------------------------------------------------
def test_resolve_transport_defaults_to_pipe(monkeypatch):
    monkeypatch.delenv(transport_mod.TRANSPORT_ENV, raising=False)
    assert resolve_transport_name() == "pipe"
    assert resolve_transport_name("socket") == "socket"


def test_env_kill_switch_beats_the_requested_kind(monkeypatch):
    monkeypatch.setenv(transport_mod.TRANSPORT_ENV, "pipe")
    assert resolve_transport_name("socket") == "pipe"
    monkeypatch.setenv(transport_mod.TRANSPORT_ENV, "socket")
    assert resolve_transport_name("pipe") == "socket"


def test_unknown_transport_kind_fails_loudly(monkeypatch):
    monkeypatch.delenv(transport_mod.TRANSPORT_ENV, raising=False)
    with pytest.raises(ValueError, match="unknown exec transport"):
        resolve_transport_name("carrier-pigeon")
    monkeypatch.setenv(transport_mod.TRANSPORT_ENV, "typo")
    with pytest.raises(ValueError, match="unknown exec transport"):
        resolve_transport_name("pipe")


def test_make_job_transport_kinds(monkeypatch):
    monkeypatch.delenv(transport_mod.TRANSPORT_ENV, raising=False)
    assert isinstance(make_job_transport(JOB_TARGET), PipeTransport)
    assert isinstance(
        make_job_transport(JOB_TARGET, "socket"), SocketTransport
    )
    monkeypatch.setenv(transport_mod.TRANSPORT_ENV, "socket")
    assert isinstance(make_job_transport(JOB_TARGET), SocketTransport)


# ----------------------------------------------------------------------
# THE escalation suite (satellite: exactly one implementation)
# ----------------------------------------------------------------------
def _wedge(transport, tmp_path):
    """Drive ``transport``'s worker into a SIGTERM-masked hang."""
    ready = tmp_path / "wedged"
    transport.spawn()
    transport.send(("job", "wedge", 1, selftest_job("wedge", inject={
        "ignore_sigterm": True,
        "touch": str(ready),
        "hang_attempts": 1,
        "hang_seconds": 60.0,
    })))
    deadline = time.monotonic() + 10.0
    while not ready.exists():  # wait until SIGTERM is masked
        assert time.monotonic() < deadline, "worker never reached the hang"
        time.sleep(0.01)


@pytest.mark.parametrize("kind", ["pipe", "socket"])
def test_kill_escalates_to_sigkill_on_a_wedged_worker(
    kind, tmp_path, monkeypatch
):
    """A worker that masks SIGTERM must not outlive kill(): after the
    grace period terminate_process escalates to SIGKILL rather than
    leaking the process beside its respawned replacement."""
    monkeypatch.setattr(transport_mod, "TERM_GRACE_S", 0.2)
    transport = make_job_transport(JOB_TARGET, kind)
    _wedge(transport, tmp_path)
    proc = transport._proc
    transport.kill()
    assert not proc.is_alive()
    assert transport._proc is None and not transport.alive


def test_terminate_process_is_safe_on_dead_and_none():
    transport_mod.terminate_process(None)  # must not raise
    ctx = transport_mod.pool_context()
    proc = ctx.Process(target=_exit_now, daemon=True)
    proc.start()
    proc.join(10.0)
    transport_mod.terminate_process(proc)  # already dead: no-op
    assert not proc.is_alive()


def _exit_now():
    """Child target: exit immediately."""


def test_every_layer_reads_the_one_grace_constant():
    """procpool re-exports (not copies) the substrate's grace period:
    there is exactly one escalation knob."""
    from repro.perf import procpool

    assert procpool.TERM_GRACE_S is transport_mod.TERM_GRACE_S


# ----------------------------------------------------------------------
# pipe transport lifecycle
# ----------------------------------------------------------------------
def test_pipe_transport_round_trips_a_job():
    transport = PipeTransport(job_worker_main, (JOB_TARGET,))
    try:
        transport.spawn()
        transport.send(("job", "j1", 1, selftest_job("j1")))
        reply = transport.recv(timeout=30.0)
        assert reply[0] == "ok" and reply[1] == "j1"
        assert reply[2]["echo"] == "ping"
    finally:
        transport.stop()
    assert not transport.alive


def test_pipe_spawn_is_idempotent_and_reaps_dead_workers():
    transport = PipeTransport(job_worker_main, (JOB_TARGET,))
    try:
        transport.spawn()
        pid = transport.pid
        transport.spawn()  # no-op while alive
        assert transport.pid == pid
        transport.send(("job", "j1", 1, selftest_job(
            "j1", inject={"crash_attempts": 1}
        )))
        deadline = time.monotonic() + 10.0
        while transport.alive and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not transport.alive
        transport.spawn()  # reaps the corpse, starts a replacement
        assert transport.alive and transport.pid != pid
    finally:
        transport.stop()


def test_dead_pipe_surfaces_as_transport_dead():
    transport = PipeTransport(job_worker_main, (JOB_TARGET,))
    transport.spawn()
    transport.send(("job", "j1", 1, selftest_job(
        "j1", inject={"crash_attempts": 1}
    )))
    with pytest.raises(TransportDead):
        transport.recv(timeout=30.0)
    transport.kill()


def test_socket_transport_round_trips_a_job():
    transport = make_job_transport(JOB_TARGET, "socket")
    try:
        transport.spawn()
        transport.send(("job", "j1", 1, selftest_job("j1")))
        reply = transport.recv(timeout=30.0)
        assert reply[0] == "ok" and reply[1] == "j1"
        assert reply[2]["echo"] == "ping"
        assert transport.describe()["kind"] == "socket"
    finally:
        transport.stop()
    assert not transport.alive
