"""Transport fault injection: every failure is typed, never a hang.

The remote-worker faults (dropped connection mid-job, half-written
frame, a peer that stops heartbeating) are scripted over a unix
socketpair standing in for the TCP link, so each fault is exact and
the resulting verdict provably came from that fault.
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.exec import SupervisedWorker, TransportDead
from repro.exec.frames import FrameConnection, encode_frame
from repro.exec.sockets import SocketTransport

from tests.exec.test_transport import selftest_job


def adopted_pair(heartbeat_timeout_s=1.0, body_timeout_s=0.5):
    """(transport, scripted peer socket): an adopted remote worker
    whose far end the test plays by hand."""
    near, far = socket.socketpair()
    conn = FrameConnection(near, body_timeout_s=body_timeout_s)
    transport = SocketTransport.adopted(
        conn, "test:0", heartbeat_timeout_s=heartbeat_timeout_s
    )
    return transport, far


def test_connection_dropped_mid_job_is_a_crash_verdict():
    transport, far = adopted_pair()
    worker = SupervisedWorker(transport)
    try:
        worker.submit("j1", 1, selftest_job("j1"))
        far.close()  # the remote host vanishes mid-job
        started = time.monotonic()
        outcome = None
        deadline = time.monotonic() + 30.0
        while outcome is None and time.monotonic() < deadline:
            outcome = worker.poll(time.monotonic())
            time.sleep(0.05)
        assert outcome is not None and outcome.kind == "crash"
        assert time.monotonic() - started < 10.0
    finally:
        worker.kill()


def test_half_written_frame_is_a_crash_verdict_not_a_hang():
    """A reply whose frame never completes trips the body timeout and
    lands as a typed crash within seconds."""
    transport, far = adopted_pair(body_timeout_s=0.5)
    worker = SupervisedWorker(transport)
    try:
        worker.submit("j1", 1, selftest_job("j1"))
        reply = encode_frame(("ok", "j1", {"echo": "pong"}))
        far.sendall(reply[: len(reply) // 2])  # ...then stall forever
        started = time.monotonic()
        outcome = None
        deadline = time.monotonic() + 30.0
        while outcome is None and time.monotonic() < deadline:
            outcome = worker.poll(time.monotonic())
            time.sleep(0.05)
        assert outcome is not None and outcome.kind == "crash"
        assert time.monotonic() - started < 10.0
    finally:
        worker.kill()
        far.close()


def test_stopped_heartbeat_is_a_crash_verdict():
    """A connected-but-silent remote worker goes stale after
    heartbeat_timeout_s and the in-flight attempt resolves crash."""
    transport, far = adopted_pair(heartbeat_timeout_s=0.5)
    far.sendall(encode_frame(("hb",)))  # one beat, then silence
    worker = SupervisedWorker(transport)
    try:
        started = time.monotonic()
        outcome = worker.attempt("j1", 1, selftest_job("j1"), timeout_s=30.0)
        assert outcome.kind == "crash"
        assert 0.3 < time.monotonic() - started < 10.0
    finally:
        worker.kill()
        far.close()


def test_heartbeats_keep_a_slow_worker_alive():
    """Heartbeats are liveness, not progress: a worker that beats but
    has not replied yet stays alive past the heartbeat timeout."""
    transport, far = adopted_pair(heartbeat_timeout_s=0.6)
    try:
        deadline = time.monotonic() + 1.5
        while time.monotonic() < deadline:
            far.sendall(encode_frame(("hb",)))
            assert transport.alive
            time.sleep(0.2)
        far.sendall(encode_frame(("ok", "j1", {"echo": "late"})))
        assert transport.recv(timeout=5.0) == ["ok", "j1", {"echo": "late"}]
    finally:
        transport.kill()
        far.close()


def test_adopted_transport_cannot_respawn():
    transport, far = adopted_pair()
    try:
        assert transport.is_remote and not transport.can_respawn
        far.close()
        transport.kill()
        with pytest.raises(TransportDead):
            transport.spawn()
    finally:
        far.close()


def test_torn_frame_surfaces_as_transport_dead():
    transport, far = adopted_pair(body_timeout_s=0.3)
    try:
        frame = encode_frame({"oops": "x" * 128})
        far.sendall(frame[: len(frame) - 5])
        with pytest.raises(TransportDead, match="torn frame"):
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                transport.try_recv()
                time.sleep(0.05)
    finally:
        transport.kill()
        far.close()
