"""Preference vectors steering clustering and allocation ordering."""

import pytest

from repro import DelayPolicy, SystemSpec, Task, TaskGraph
from repro.arch.architecture import Architecture
from repro.cluster.clustering import cluster_spec
from repro.alloc.array import AllocationKind, build_allocation_array


def preference_spec(weights):
    g = TaskGraph(name="g", period=0.1, deadline=0.05)
    g.add_task(Task(
        name="t",
        exec_times={"CPU": 1e-3, "FPGA": 1e-3},
        preference=weights,
        memory=__import__("repro.graph.task", fromlist=["MemoryRequirement"])
        .MemoryRequirement(program=64),
        area_gates=100,
        pins=4,
    ))
    return SystemSpec("s", [g])


class TestClusterPreference:
    def test_preference_weight_product(self, small_library):
        spec = preference_spec({"FPGA": 0.5})
        clustering = cluster_spec(spec, small_library)
        cluster = clustering.cluster_of("g", "t")
        graph = spec.graph("g")
        assert cluster.preference_weight("FPGA", graph) == pytest.approx(0.5)
        assert cluster.preference_weight("CPU", graph) == pytest.approx(1.0)

    def test_zero_preference_excludes_type(self, small_library):
        spec = preference_spec({"FPGA": 0.0})
        clustering = cluster_spec(spec, small_library)
        cluster = clustering.cluster_of("g", "t")
        assert "FPGA" not in cluster.allowed_pe_types
        assert "CPU" in cluster.allowed_pe_types


class TestAllocationPreferenceOrdering:
    def test_higher_preference_wins_at_equal_cost(self, small_library):
        # Existing CPU and FPGA, both free to join; the FPGA is
        # preferred by weight so it sorts first at identical cost.
        spec = preference_spec({"FPGA": 1.0, "CPU": 0.2})
        clustering = cluster_spec(spec, small_library)
        cluster = clustering.cluster_of("g", "t")
        arch = Architecture(small_library)
        arch.new_pe(small_library.pe_type("CPU"))
        arch.new_pe(small_library.pe_type("FPGA"))
        options = build_allocation_array(
            cluster, arch, clustering, spec, DelayPolicy()
        )
        existing = [
            o for o in options
            if o.kind in (AllocationKind.EXISTING_PE, AllocationKind.EXISTING_MODE)
        ]
        assert existing[0].pe_id.startswith("FPGA")
