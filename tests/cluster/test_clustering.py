"""Critical-path task clustering."""

import pytest

from repro import SpecificationError, SystemSpec, Task, TaskGraph
from repro.cluster.clustering import (
    cluster_graph,
    cluster_spec,
    trivial_clustering,
)
from repro.cluster.priority import PriorityContext
from repro.graph.task import MemoryRequirement


def sw_task(name, wcet=1e-3, exclusions=()):
    return Task(
        name=name,
        exec_times={"CPU": wcet},
        memory=MemoryRequirement(program=1024),
        exclusions=frozenset(exclusions),
    )


def chain_spec(n=5):
    g = TaskGraph(name="g", period=0.1, deadline=0.05)
    names = ["t%d" % i for i in range(n)]
    for name in names:
        g.add_task(sw_task(name))
    for a, b in zip(names, names[1:]):
        g.add_edge(a, b, bytes_=256)
    return SystemSpec("s", [g])


class TestClusterGraph:
    def test_every_task_clustered_once(self, small_library):
        spec = chain_spec(7)
        result = cluster_spec(spec, small_library)
        seen = [t for c in result.clusters.values() for t in c.task_names]
        assert sorted(seen) == sorted(spec.graph("g").tasks)

    def test_chain_collapses_into_one_cluster(self, small_library):
        spec = chain_spec(5)
        result = cluster_spec(spec, small_library)
        assert result.n_clusters == 1
        cluster = next(iter(result.clusters.values()))
        # Absorbed along the path in order.
        assert cluster.task_names == ["t0", "t1", "t2", "t3", "t4"]

    def test_max_cluster_size_respected(self, small_library):
        spec = chain_spec(10)
        result = cluster_spec(spec, small_library, max_cluster_size=4)
        for cluster in result.clusters.values():
            assert cluster.size <= 4

    def test_exclusions_split_clusters(self, small_library):
        g = TaskGraph(name="g", period=0.1, deadline=0.05)
        g.add_task(sw_task("a"))
        g.add_task(sw_task("b", exclusions=("a",)))
        g.add_edge("a", "b", bytes_=64)
        spec = SystemSpec("s", [g])
        result = cluster_spec(spec, small_library)
        assert result.n_clusters == 2

    def test_incompatible_pe_types_split_clusters(self, small_library):
        g = TaskGraph(name="g", period=0.1, deadline=0.05)
        g.add_task(sw_task("sw"))
        g.add_task(Task(name="hw", exec_times={"FPGA": 1e-4}, area_gates=100, pins=4))
        g.add_edge("sw", "hw", bytes_=64)
        spec = SystemSpec("s", [g])
        result = cluster_spec(spec, small_library)
        assert result.n_clusters == 2

    def test_aggregates_resources(self, small_library):
        g = TaskGraph(name="g", period=0.1, deadline=0.05)
        g.add_task(Task(name="x", exec_times={"FPGA": 1e-4}, area_gates=100, pins=4))
        g.add_task(Task(name="y", exec_times={"FPGA": 1e-4}, area_gates=150, pins=6))
        g.add_edge("x", "y", bytes_=16)
        spec = SystemSpec("s", [g])
        result = cluster_spec(spec, small_library)
        cluster = next(iter(result.clusters.values()))
        assert cluster.area_gates == 250
        assert cluster.pins == 10

    def test_hardware_capacity_cap_limits_growth(self, small_library):
        # FPGA usable gates = 200 PFUs * 10 * 0.7 = 1400; two 1000-gate
        # tasks cannot share a cluster.
        g = TaskGraph(name="g", period=0.1, deadline=0.05)
        g.add_task(Task(name="x", exec_times={"FPGA": 1e-4}, area_gates=1000, pins=4))
        g.add_task(Task(name="y", exec_times={"FPGA": 1e-4}, area_gates=1000, pins=4))
        g.add_edge("x", "y", bytes_=16)
        spec = SystemSpec("s", [g])
        result = cluster_spec(spec, small_library)
        assert result.n_clusters == 2

    def test_growth_scores_override(self, small_library):
        # A fork where priority favours one branch but growth scores
        # steer toward the other.
        g = TaskGraph(name="g", period=0.1, deadline=0.05)
        g.add_task(sw_task("root"))
        g.add_task(sw_task("hi", wcet=5e-3))
        g.add_task(sw_task("lo", wcet=1e-3))
        g.add_edge("root", "hi", bytes_=64)
        g.add_edge("root", "lo", bytes_=64)
        context = PriorityContext(
            exec_time=lambda gr, t: t.max_exec_time, comm_time=lambda gr, e: 1e-4
        )
        default = cluster_graph(g, small_library, context, max_cluster_size=2)
        assert "hi" in default[0].task_names
        steered = cluster_graph(
            g,
            small_library,
            context,
            max_cluster_size=2,
            growth_scores={"lo": 100.0, "hi": 0.0},
        )
        assert "lo" in steered[0].task_names


class TestClusteringResult:
    def test_ordered_by_priority(self, small_library, synthetic_spec):
        result = cluster_spec(synthetic_spec, small_library_or(small_library))
        ordered = result.ordered_by_priority()
        prios = [c.priority for c in ordered]
        assert prios == sorted(prios, reverse=True)

    def test_cluster_of_lookup(self, small_library):
        spec = chain_spec(3)
        result = cluster_spec(spec, small_library)
        cluster = result.cluster_of("g", "t1")
        assert "t1" in cluster.task_names
        with pytest.raises(SpecificationError):
            result.cluster_of("g", "ghost")

    def test_clusters_of_graph(self, small_library):
        spec = chain_spec(3)
        result = cluster_spec(spec, small_library)
        assert [c.graph for c in result.clusters_of_graph("g")] == ["g"]


def small_library_or(lib):
    """Use the default library when the synthetic spec needs catalog
    PE names; fall back helper for readability."""
    from repro import default_library

    return default_library()


class TestTrivialClustering:
    def test_one_cluster_per_task(self, small_library):
        spec = chain_spec(6)
        result = trivial_clustering(spec, small_library)
        assert result.n_clusters == 6
        for cluster in result.clusters.values():
            assert cluster.size == 1

    def test_priorities_still_assigned(self, small_library):
        spec = chain_spec(3)
        result = trivial_clustering(spec, small_library)
        ordered = result.ordered_by_priority()
        assert ordered[0].task_names == ["t0"]
