"""Property battery for clustering invariants on generated workloads."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import GeneratorConfig, default_library, generate_spec
from repro.cluster.clustering import cluster_spec


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=50_000),
    tasks=st.integers(min_value=2, max_value=20),
    max_size=st.integers(min_value=1, max_value=8),
)
def test_clustering_invariants(seed, tasks, max_size):
    """For any generated system:

    * every task lands in exactly one cluster;
    * clusters never span graphs;
    * cluster members form a connected path (each absorbed task is a
      successor of an earlier member);
    * aggregated resources equal the member sums;
    * the PE-type intersection is honoured and never empty;
    * exclusion vectors are never violated within a cluster;
    * the size cap holds.
    """
    library = default_library()
    spec = generate_spec(GeneratorConfig(
        seed=seed, n_graphs=2, tasks_per_graph=tasks, compat_group_size=1,
    ))
    result = cluster_spec(spec, library, max_cluster_size=max_size)

    seen = {}
    for cluster in result.clusters.values():
        graph = spec.graph(cluster.graph)
        assert 1 <= cluster.size <= max_size
        assert cluster.allowed_pe_types, cluster.name
        gates = pins = memory = 0
        for task_name in cluster.task_names:
            assert task_name not in seen, "task clustered twice"
            seen[task_name] = cluster.name
            task = graph.task(task_name)
            gates += task.area_gates
            pins += task.pins
            memory += task.memory.total
            for pe_type in cluster.allowed_pe_types:
                assert task.can_run_on(pe_type)
            # No member excludes another member.
            assert not (task.exclusions & set(cluster.task_names))
        assert gates == cluster.area_gates
        assert pins == cluster.pins
        assert memory == cluster.memory.total
        # Path-connectedness: after the seed, every member is a direct
        # successor of the previous one (critical-path growth).
        for earlier, later in zip(cluster.task_names, cluster.task_names[1:]):
            assert later in graph.successors(earlier)

    total_tasks = sum(len(spec.graph(n)) for n in spec.graph_names())
    assert len(seen) == total_tasks
