"""Deadline-based priority levels (Section 5 semantics)."""

import pytest

from repro import Task, TaskGraph
from repro.cluster.priority import (
    NO_DEADLINE_PRIORITY,
    PriorityContext,
    compute_edge_priorities,
    compute_task_priorities,
)


def chain(pe="CPU", wcets=(1e-3, 2e-3, 3e-3), deadline=0.01, bytes_=0):
    g = TaskGraph(name="c", period=0.1, deadline=deadline)
    names = []
    for i, w in enumerate(wcets):
        name = "t%d" % i
        g.add_task(Task(name=name, exec_times={pe: w}))
        names.append(name)
    for a, b in zip(names, names[1:]):
        g.add_edge(a, b, bytes_=bytes_)
    return g


def fixed_context(exec_value=None, comm_value=0.0):
    return PriorityContext(
        exec_time=lambda g, t: exec_value if exec_value is not None else t.max_exec_time,
        comm_time=lambda g, e: comm_value,
    )


class TestTaskPriorities:
    def test_sink_priority_is_exec_minus_deadline(self):
        g = chain(wcets=(1e-3,), deadline=0.01)
        prios = compute_task_priorities(g, fixed_context())
        assert prios["t0"] == pytest.approx(1e-3 - 0.01)

    def test_chain_accumulates_longest_path(self):
        g = chain(wcets=(1e-3, 2e-3, 3e-3), deadline=0.01)
        prios = compute_task_priorities(g, fixed_context())
        assert prios["t2"] == pytest.approx(3e-3 - 0.01)
        assert prios["t1"] == pytest.approx(2e-3 + prios["t2"])
        assert prios["t0"] == pytest.approx(1e-3 + prios["t1"])

    def test_upstream_tasks_more_urgent(self):
        g = chain()
        prios = compute_task_priorities(g, fixed_context())
        assert prios["t0"] > prios["t1"] > prios["t2"]

    def test_communication_adds_to_path(self):
        g = chain(bytes_=100)
        with_comm = compute_task_priorities(g, fixed_context(comm_value=1e-3))
        without = compute_task_priorities(g, fixed_context(comm_value=0.0))
        assert with_comm["t0"] == pytest.approx(without["t0"] + 2e-3)

    def test_branch_takes_max(self):
        g = TaskGraph(name="b", period=0.1, deadline=0.01)
        for name, w in (("root", 1e-3), ("fast", 1e-3), ("slow", 5e-3)):
            g.add_task(Task(name=name, exec_times={"CPU": w}))
        g.add_edge("root", "fast")
        g.add_edge("root", "slow")
        prios = compute_task_priorities(g, fixed_context())
        assert prios["root"] == pytest.approx(1e-3 + prios["slow"])

    def test_task_with_own_deadline(self):
        g = TaskGraph(name="d", period=0.1, deadline=0.05)
        g.add_task(Task(name="a", exec_times={"CPU": 1e-3}, deadline=0.002))
        g.add_task(Task(name="b", exec_times={"CPU": 1e-3}))
        g.add_edge("a", "b")
        prios = compute_task_priorities(g, fixed_context())
        # a's own tight deadline dominates the path through b.
        assert prios["a"] == pytest.approx(1e-3 - 0.002)

    def test_pessimistic_context_uses_max(self, library):
        g = chain(pe="MC68360")
        context = PriorityContext.pessimistic(library)
        prios = compute_task_priorities(g, context)
        assert prios["t0"] > prios["t2"]

    def test_optimistic_leq_pessimistic(self, library):
        g = chain(pe="MC68360", bytes_=256)
        pes = compute_task_priorities(g, PriorityContext.pessimistic(library))
        opt = compute_task_priorities(g, PriorityContext.optimistic(library))
        for name in g.tasks:
            assert opt[name] <= pes[name] + 1e-12


class TestEdgePriorities:
    def test_edge_priority_formula(self):
        g = chain(bytes_=10)
        context = fixed_context(comm_value=5e-4)
        task_prios = compute_task_priorities(g, context)
        edge_prios = compute_edge_priorities(g, context, task_prios)
        assert edge_prios[("t0", "t1")] == pytest.approx(5e-4 + task_prios["t1"])

    def test_computed_without_supplied_task_priorities(self):
        g = chain()
        context = fixed_context()
        edge_prios = compute_edge_priorities(g, context)
        assert set(edge_prios) == set(g.edges)


class TestNoDeadlinePaths:
    def test_isolated_task_without_deadline(self):
        # A graph-level deadline applies only to sinks; an isolated
        # no-deadline situation needs a task-level construction:
        g = TaskGraph(name="n", period=0.1, deadline=0.05)
        g.add_task(Task(name="sink", exec_times={"CPU": 1e-3}))
        prios = compute_task_priorities(g, fixed_context())
        assert prios["sink"] != NO_DEADLINE_PRIORITY  # sinks inherit
