"""Benchmark harness: examples, table renderers, Figure 2."""

import pytest

from repro import SpecificationError, validate_spec
from repro.bench.examples import EXAMPLE_NAMES, build_example, example_profile
from repro.bench.figure2 import figure2_library, figure2_spec, run_figure2
from repro.bench.runner import pct, render_table
from repro.bench.table1 import ERUF_SWEEP, render_table1, run_table1
from repro.bench.table2 import Table2Row, run_table2_row, render_table2
from repro.delay.circuits import UNROUTABLE_AT_FULL


class TestExamples:
    def test_eight_examples_in_paper_order(self):
        assert EXAMPLE_NAMES == [
            "A1TR", "VDRTX", "HROST", "EST189A", "HRXC", "ADMR", "B192G", "NGXM",
        ]

    def test_profiles_match_paper_task_counts(self):
        expected = {
            "A1TR": 1126, "VDRTX": 1634, "HROST": 2645, "EST189A": 3826,
            "HRXC": 4571, "ADMR": 5419, "B192G": 6815, "NGXM": 7416,
        }
        for name, tasks in expected.items():
            assert example_profile(name).total_tasks == tasks

    def test_unknown_example(self):
        with pytest.raises(SpecificationError):
            example_profile("nope")

    def test_build_small_scale(self, library):
        spec = build_example("A1TR", scale=0.05, library=library)
        validate_spec(spec, library)
        assert spec.has_explicit_compatibility
        assert spec.total_tasks > 50

    def test_scale_changes_group_count_not_graph_size(self, library):
        small = build_example("A1TR", scale=0.05, library=library)
        larger = build_example("A1TR", scale=0.4, library=library)
        assert len(larger.graphs) > len(small.graphs)
        mean_small = small.total_tasks / len(small.graphs)
        mean_large = larger.total_tasks / len(larger.graphs)
        assert mean_small == pytest.approx(mean_large, rel=0.25)

    def test_deterministic(self, library):
        a = build_example("VDRTX", scale=0.05, library=library)
        b = build_example("VDRTX", scale=0.05, library=library)
        assert a.graph_names() == b.graph_names()
        assert a.total_tasks == b.total_tasks

    def test_invalid_scale(self):
        with pytest.raises(SpecificationError):
            build_example("A1TR", scale=0.0)


class TestTable1Bench:
    def test_full_sweep_shape(self):
        results = run_table1()
        assert set(results) == set(
            ["cvs1", "cvs2", "xtrs1", "xtrs2", "rnvk", "fcsdp",
             "r2d2p", "cv46", "wamxp", "pewxfm"]
        )
        for name, cells in results.items():
            assert len(cells) == len(ERUF_SWEEP)
            # Zero at the reference column.
            assert cells[0].increase_pct == 0.0
            # Monotone while routable.
            values = [c.increase_pct for c in cells if c.routable]
            assert values == sorted(values)
        unroutable = [
            name for name, cells in results.items() if not cells[-1].routable
        ]
        assert tuple(unroutable) == UNROUTABLE_AT_FULL

    def test_rendering(self):
        text = render_table1(run_table1(circuits=["cvs1", "r2d2p"]))
        assert "Table 1" in text
        assert "cvs1" in text
        assert "Not routable" in text


class TestFigure2Bench:
    def test_specification_matches_paper(self):
        spec = figure2_spec()
        assert spec.graph_names() == ["T1", "T2", "T3"]
        assert spec.compatible("T2", "T3") is True
        assert spec.compatible("T1", "T2") is False
        lib = figure2_library()
        f1, f2 = lib.pe_type("F1"), lib.pe_type("F2")
        # F2 holds all three; F1 only two (under the 70 % cap).
        total = 800 + 700 + 700
        assert f2.pfus * 10 * 0.7 >= total
        assert f1.pfus * 10 * 0.7 < total
        assert f1.pfus * 10 * 0.7 >= 800 + 700

    def test_reconfiguration_wins(self):
        outcome = run_figure2()
        assert outcome.with_reconfig.feasible
        assert outcome.without.feasible
        assert outcome.reconfiguration_wins
        assert outcome.savings_pct > 30.0
        # One F1, two modes, T1 replicated into both.
        ppes = outcome.with_reconfig.arch.programmable_pes()
        assert len(ppes) == 1
        assert ppes[0].pe_type.name == "F1"
        assert ppes[0].n_modes == 2
        assert ppes[0].modes_of_cluster("T1/c000") == (0, 1)
        # The reboot task actually fires at run time.
        assert outcome.with_reconfig.reconfigurations >= 1


class TestTable2Bench:
    @pytest.fixture(scope="class")
    def row(self):
        return run_table2_row("A1TR", scale=0.03)

    def test_both_runs_feasible(self, row):
        assert row.without.feasible
        assert row.with_reconfig.feasible

    def test_savings_non_negative(self, row):
        # Route (b) guards reconfiguration against ever losing.
        assert row.savings_pct >= -1e-9

    def test_rendering(self, row):
        text = render_table2([row])
        assert "Table 2" in text
        assert "A1TR" in text


class TestRunnerHelpers:
    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in text

    def test_pct(self):
        assert pct(12.345) == "12.3"
