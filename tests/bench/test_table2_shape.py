"""Golden-shape regression for Table 2 (the paper's headline claim).

The merge route only ever accepts cost-decreasing, deadline-feasible
architectures starting from the baseline, so dynamic reconfiguration
can never cost more than the baseline nor grow the PE count -- the
"savings shape" invariant DESIGN.md documents.  Locking it at
``REPRO_SCALE=0.1`` for all eight examples protects the allocation,
scheduling and merge paths before performance work starts churning
them.

Runtime tiers (measured on one core at scale 0.1): A1TR ~3 s and
VDRTX ~4 s run unmarked; HROST ~32 s and EST189A ~21 s carry the
``slow`` marker; HRXC (~4 min), ADMR (~7 min), B192G and NGXM are so
large that they additionally require ``REPRO_GOLDEN_HEAVY=1`` --
they would multiply the whole suite's wall time otherwise.  Run

    REPRO_GOLDEN_HEAVY=1 pytest tests/bench/test_table2_shape.py -m slow

to assert the shape on every example.
"""

import os

import pytest

from repro.bench.examples import EXAMPLE_NAMES
from repro.bench.table2 import run_table2_row

GOLDEN_SCALE = 0.1
FAST_EXAMPLES = ("A1TR", "VDRTX")
HEAVY_EXAMPLES = ("HRXC", "ADMR", "B192G", "NGXM")
MID_EXAMPLES = tuple(
    n for n in EXAMPLE_NAMES if n not in FAST_EXAMPLES + HEAVY_EXAMPLES
)


def assert_savings_shape(name):
    row = run_table2_row(name, scale=GOLDEN_SCALE)
    assert row.without.feasible, "%s baseline infeasible" % name
    assert row.with_reconfig.feasible, "%s reconfig infeasible" % name
    assert row.with_reconfig.cost <= row.without.cost, (
        "%s: reconfiguration raised cost %.0f -> %.0f"
        % (name, row.without.cost, row.with_reconfig.cost)
    )
    assert row.with_reconfig.n_pes <= row.without.n_pes, (
        "%s: reconfiguration grew the PE count %d -> %d"
        % (name, row.without.n_pes, row.with_reconfig.n_pes)
    )
    assert row.savings_pct >= 0.0


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_savings_shape_fast_examples(name):
    assert_savings_shape(name)


@pytest.mark.slow
@pytest.mark.parametrize("name", MID_EXAMPLES)
def test_savings_shape_mid_examples(name):
    assert_savings_shape(name)


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_GOLDEN_HEAVY"),
    reason="multi-minute synthesis; set REPRO_GOLDEN_HEAVY=1 to run",
)
@pytest.mark.parametrize("name", HEAVY_EXAMPLES)
def test_savings_shape_heavy_examples(name):
    assert_savings_shape(name)
