"""Example profile validation."""

import pytest

from repro import SpecificationError
from repro.bench.examples import ExampleProfile, Section, example_profile


class TestSection:
    @pytest.mark.parametrize("kwargs", [
        dict(fraction=0.0, group_size=2),
        dict(fraction=1.5, group_size=2),
        dict(fraction=0.5, group_size=0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(SpecificationError):
            Section(**kwargs)


class TestExampleProfile:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(SpecificationError):
            ExampleProfile(
                name="x", total_tasks=100,
                sections=(Section(0.5, 2), Section(0.4, 1)),
                seed=1,
            )

    def test_paper_profiles_are_valid(self):
        # Construction of every named profile already validated at
        # import; spot-check key shape properties.
        ngxm = example_profile("NGXM")
        assert sum(s.fraction for s in ngxm.sections) == pytest.approx(1.0)
        # The biggest savers are group-4 heavy.
        assert ngxm.sections[0].group_size == 4
        assert ngxm.sections[0].fraction >= 0.4
        a1tr = example_profile("A1TR")
        assert any(s.group_size == 1 for s in a1tr.sections)

    def test_profiles_ordered_by_task_count(self):
        from repro.bench.examples import EXAMPLE_NAMES

        counts = [example_profile(n).total_tasks for n in EXAMPLE_NAMES]
        assert counts == sorted(counts)
