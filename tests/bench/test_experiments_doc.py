"""EXPERIMENTS.md refresher."""

import pytest

from repro import SpecificationError
from repro.bench.experiments_doc import _replace_block_after, refresh_experiments


DOC = """# Title

## Table 1 — something

intro text

```
OLD TABLE
```

closing text

## Table 2 — other

```
OLD 2
```
"""


class TestReplaceBlock:
    def test_replaces_only_first_block_after_heading(self):
        out = _replace_block_after(DOC, "## Table 1", "```\nNEW\n```")
        assert "NEW" in out
        assert "OLD TABLE" not in out
        assert "OLD 2" in out
        assert "closing text" in out

    def test_missing_heading_returns_none(self):
        assert _replace_block_after(DOC, "## Nope", "x") is None

    def test_missing_fence_returns_none(self):
        assert _replace_block_after("## Table 1\nno fence", "## Table 1", "x") is None


class TestRefresh:
    def test_refresh_from_results(self, tmp_path):
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text(DOC)
        results = tmp_path / "results"
        results.mkdir()
        (results / "table1.txt").write_text("MEASURED T1\n")
        status = refresh_experiments(doc, results)
        assert status["## Table 1"] is True
        assert status["## Table 2"] is False  # no table2.txt yet
        text = doc.read_text()
        assert "MEASURED T1" in text
        assert "OLD 2" in text  # untouched

    def test_missing_doc_raises(self, tmp_path):
        with pytest.raises(SpecificationError):
            refresh_experiments(tmp_path / "nope.md", tmp_path)

    def test_cli_command(self, tmp_path, capsys):
        from repro.cli import main

        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text(DOC)
        results = tmp_path / "results"
        results.mkdir()
        (results / "table1.txt").write_text("CLI T1\n")
        code = main([
            "experiments", "--doc", str(doc), "--results", str(results),
        ])
        assert code == 0
        assert "refreshed" in capsys.readouterr().out
        assert "CLI T1" in doc.read_text()

    def test_real_document_headings_resolve(self):
        """The real EXPERIMENTS.md contains every heading the refresher
        targets, each followed by a fenced block."""
        import pathlib

        from repro.bench.experiments_doc import _SECTION_SOURCES

        text = pathlib.Path("EXPERIMENTS.md").read_text()
        for heading in _SECTION_SOURCES:
            assert heading in text
            assert _replace_block_after(text, heading, "```\nx\n```") is not None
