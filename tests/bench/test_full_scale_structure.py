"""Full-scale example *generation* (no synthesis): the paper's task
counts must be reproduced structurally at scale 1.0."""

import pytest

from repro import validate_spec
from repro.bench.examples import EXAMPLE_NAMES, build_example, example_profile


@pytest.mark.slow
@pytest.mark.parametrize("name", ["A1TR", "NGXM"])
def test_full_scale_task_count_close_to_paper(name, library):
    spec = build_example(name, scale=1.0, library=library)
    expected = example_profile(name).total_tasks
    # Whole-group rounding: within 15 % of the published count.
    assert abs(spec.total_tasks - expected) / expected < 0.15
    validate_spec(spec, library)


@pytest.mark.slow
def test_full_scale_compat_structure(library):
    spec = build_example("B192G", scale=1.0, library=library)
    # B192G is dominated by 4- and 3-graph compatibility groups.
    names = spec.graph_names()
    compatible_degree = {
        a: sum(1 for b in names if a != b and spec.compatible(a, b))
        for a in names
    }
    assert max(compatible_degree.values()) == 3  # 4-graph groups
    assert sum(1 for d in compatible_degree.values() if d >= 2) > len(names) / 2


def test_every_example_generates_at_bench_scale(library):
    for name in EXAMPLE_NAMES:
        spec = build_example(name, scale=0.05, library=library)
        assert spec.total_tasks >= 100
        assert spec.has_explicit_compatibility
