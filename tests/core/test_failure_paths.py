"""Failure injection: how synthesis behaves on impossible inputs."""

import pytest

from repro import (
    CrusadeConfig,
    SynthesisError,
    SystemSpec,
    Task,
    TaskGraph,
    crusade,
)
from repro.graph.task import MemoryRequirement
from repro.resources import LinkType, MemoryBank, PEKind, PpeType, ProcessorType
from repro.resources.library import ResourceLibrary
from repro.units import MB


def tiny_library():
    lib = ResourceLibrary()
    lib.add_pe_type(ProcessorType(
        name="CPU", cost=10.0, memory_banks=(MemoryBank(1 * MB, 5.0),),
    ))
    lib.add_pe_type(PpeType(
        name="FPGA", cost=20.0, device_kind=PEKind.FPGA, pfus=50,
        flip_flops=50, pins=20,
    ))
    lib.add_link_type(LinkType(
        name="bus", cost=1.0, max_ports=4,
        access_times=(1e-6,) * 4, bytes_per_packet=32, packet_tx_time=1e-6,
    ))
    return lib


class TestImpossibleInputs:
    def test_oversized_hardware_task_raises(self):
        # 10 000 gates cannot fit the 50-PFU (350-usable-gate) FPGA.
        g = TaskGraph(name="g", period=1.0, deadline=0.5)
        g.add_task(Task(name="huge", exec_times={"FPGA": 1e-3},
                        area_gates=10_000, pins=4))
        spec = SystemSpec("s", [g])
        with pytest.raises(SynthesisError):
            crusade(spec, library=tiny_library(),
                    config=CrusadeConfig(max_explicit_copies=2))

    def test_oversized_memory_task_raises(self):
        g = TaskGraph(name="g", period=1.0, deadline=0.5)
        g.add_task(Task(name="fat", exec_times={"CPU": 1e-3},
                        memory=MemoryRequirement(data=8 * MB)))
        spec = SystemSpec("s", [g])
        with pytest.raises(SynthesisError):
            crusade(spec, library=tiny_library(),
                    config=CrusadeConfig(max_explicit_copies=2))

    def test_impossible_deadline_flagged_not_raised(self):
        g = TaskGraph(name="g", period=1.0, deadline=1e-9)
        g.add_task(Task(name="t", exec_times={"CPU": 1e-3},
                        memory=MemoryRequirement(program=64)))
        spec = SystemSpec("s", [g])
        result = crusade(spec, library=tiny_library(),
                         config=CrusadeConfig(max_explicit_copies=2))
        assert not result.feasible
        assert result.report.n_missed > 0
        # The least-infeasible architecture is still fully allocated.
        for cluster in result.clustering.clusters:
            assert result.arch.is_allocated(cluster)

    def test_infeasible_result_still_validates(self):
        from repro.arch.validate import validate_architecture
        from repro.graph.association import AssociationArray
        from repro.sched.validate import validate_schedule

        g = TaskGraph(name="g", period=1.0, deadline=1e-9)
        g.add_task(Task(name="t", exec_times={"CPU": 1e-3},
                        memory=MemoryRequirement(program=64)))
        spec = SystemSpec("s", [g])
        config = CrusadeConfig(max_explicit_copies=2)
        result = crusade(spec, library=tiny_library(), config=config)
        assoc = AssociationArray(spec, max_explicit_copies=2)
        assert validate_schedule(
            result.schedule, spec, assoc, result.clustering, result.arch
        ).ok
        assert validate_architecture(result.arch, result.clustering).ok
