"""Allocation-aware priority recomputation (Section 5)."""

import pytest

from repro import SystemSpec, Task, TaskGraph
from repro.arch.architecture import Architecture
from repro.cluster.clustering import cluster_spec
from repro.cluster.priority import PriorityContext, compute_task_priorities
from repro.core.crusade import _allocation_aware_context
from repro.graph.task import MemoryRequirement


@pytest.fixture
def chain_setup(small_library):
    g = TaskGraph(name="g", period=0.1, deadline=0.05)
    g.add_task(Task(name="a", exec_times={"CPU": 1e-3},
                    memory=MemoryRequirement(program=64)))
    g.add_task(Task(name="b", exec_times={"CPU": 2e-3, "FPGA": 1e-4},
                    memory=MemoryRequirement(program=64), area_gates=100, pins=4))
    g.add_edge("a", "b", bytes_=256)
    spec = SystemSpec("s", [g])
    clustering = cluster_spec(spec, small_library, max_cluster_size=1)
    return spec, clustering, g


class TestAllocationAwareContext:
    def test_unallocated_falls_back_to_pessimistic(
        self, small_library, chain_setup
    ):
        spec, clustering, g = chain_setup
        arch = Architecture(small_library)
        context = _allocation_aware_context(small_library, arch, clustering)
        pessimistic = PriorityContext.pessimistic(small_library)
        assert compute_task_priorities(g, context) == compute_task_priorities(
            g, pessimistic
        )

    def test_allocated_task_uses_actual_wcet(self, small_library, chain_setup):
        spec, clustering, g = chain_setup
        arch = Architecture(small_library)
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        b_cluster = clustering.cluster_of("g", "b")
        arch.allocate_cluster(b_cluster.name, fpga.id, 0, gates=100, pins=4)
        context = _allocation_aware_context(small_library, arch, clustering)
        # b now costs its FPGA time (1e-4), not the pessimistic 2e-3.
        assert context.exec_time(g, g.task("b")) == pytest.approx(1e-4)
        assert context.exec_time(g, g.task("a")) == pytest.approx(1e-3)

    def test_same_pe_edge_costs_nothing(self, small_library, chain_setup):
        spec, clustering, g = chain_setup
        arch = Architecture(small_library)
        cpu = arch.new_pe(small_library.pe_type("CPU"))
        for name in ("a", "b"):
            cluster = clustering.cluster_of("g", name)
            arch.allocate_cluster(cluster.name, cpu.id, 0, memory=cluster.memory)
        context = _allocation_aware_context(small_library, arch, clustering)
        assert context.comm_time(g, g.edge("a", "b")) == 0.0

    def test_cross_pe_edge_uses_link_time(self, small_library, chain_setup):
        spec, clustering, g = chain_setup
        arch = Architecture(small_library)
        cpu = arch.new_pe(small_library.pe_type("CPU"))
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        a_cluster = clustering.cluster_of("g", "a")
        b_cluster = clustering.cluster_of("g", "b")
        arch.allocate_cluster(a_cluster.name, cpu.id, 0, memory=a_cluster.memory)
        arch.allocate_cluster(b_cluster.name, fpga.id, 0, gates=100, pins=4)
        bus = small_library.link_type("bus")
        link = arch.connect(cpu.id, fpga.id, bus)
        context = _allocation_aware_context(small_library, arch, clustering)
        expected = link.comm_time(256)
        assert context.comm_time(g, g.edge("a", "b")) == pytest.approx(expected)

    def test_priorities_tighten_as_allocation_improves(
        self, small_library, chain_setup
    ):
        """Placing b on the fast FPGA shortens the path through it, so
        a's urgency (priority) drops relative to the pessimistic
        estimate."""
        spec, clustering, g = chain_setup
        pessimistic = compute_task_priorities(
            g, PriorityContext.pessimistic(small_library)
        )
        arch = Architecture(small_library)
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        b_cluster = clustering.cluster_of("g", "b")
        arch.allocate_cluster(b_cluster.name, fpga.id, 0, gates=100, pins=4)
        aware = compute_task_priorities(
            g, _allocation_aware_context(small_library, arch, clustering)
        )
        assert aware["a"] < pessimistic["a"]
