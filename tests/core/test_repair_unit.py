"""Direct unit coverage for the repair pass (repro.core.stages.repair).

The end-to-end suites only exercise repair through full ``crusade()``
runs; these tests drive :func:`repair_pass` against handcrafted
architectures so its edge cases are pinned on their own: the
no-offender fast path, non-converging repair (returned infeasible
rather than raised), and the offender walk up a critical chain.
"""

import pytest

from repro import CrusadeConfig, SystemSpec, Task, TaskGraph, Tracer
from repro.arch.architecture import Architecture
from repro.cluster.clustering import trivial_clustering
from repro.core.stages.repair import Repair, repair_pass
from repro.core.stages.support import (
    allocation_aware_context,
    compute_priorities,
)
from repro.graph.association import AssociationArray
from repro.graph.task import MemoryRequirement
from repro.obs.trace import MemorySink
from repro.alloc.evaluate import evaluate_architecture


def _mem():
    return MemoryRequirement(program=64)


def _place(arch, clustering, cluster_name, pe_id, mode=0):
    cluster = clustering.clusters[cluster_name]
    arch.allocate_cluster(
        cluster_name, pe_id, mode,
        gates=cluster.area_gates, pins=cluster.pins, memory=cluster.memory,
    )


def _evaluate(spec, library, clustering, arch, tracer):
    assoc = AssociationArray(spec, max_explicit_copies=2)
    context = allocation_aware_context(library, arch, clustering)
    priorities = compute_priorities(spec, context)
    verdict = evaluate_architecture(
        spec, assoc, clustering, arch, priorities,
        preemption=True, tracer=tracer,
    )
    return assoc, priorities, verdict


def _chain_spec(deadline, b_exec_fpga=None):
    """a -> b -> c software chain; b optionally hardware-capable."""
    g = TaskGraph(name="chain", period=0.1, deadline=deadline)
    b_times = {"CPU": 0.001}
    if b_exec_fpga is not None:
        b_times["FPGA"] = b_exec_fpga
    g.add_task(Task(name="a", exec_times={"CPU": 0.001}, memory=_mem()))
    g.add_task(Task(name="b", exec_times=b_times, memory=_mem(),
                    area_gates=50, pins=8))
    g.add_task(Task(name="c", exec_times={"CPU": 0.001}, memory=_mem()))
    g.add_edge("a", "b", bytes_=0)
    g.add_edge("b", "c", bytes_=0)
    return SystemSpec("chain-sys", [g])


class TestNoOffenderPath:
    def test_feasible_input_is_returned_untouched(self, small_library):
        """A verdict that already meets every deadline short-circuits:
        no rounds, no re-homings, the same object back."""
        spec = _chain_spec(deadline=0.01)
        clustering = trivial_clustering(spec, small_library)
        arch = Architecture(small_library)
        cpu = arch.new_pe(small_library.pe_type("CPU"))
        for name in clustering.clusters:
            _place(arch, clustering, name, cpu.id)
        tracer = Tracer()
        assoc, priorities, current = _evaluate(
            spec, small_library, clustering, arch, tracer
        )
        assert current.report.all_met
        result = repair_pass(
            spec, assoc, clustering, current, priorities, None,
            CrusadeConfig(reconfiguration=False), tracer,
        )
        assert result is current
        counters = tracer.counters.as_dict()
        assert counters.get("repair.rounds", 0) == 0
        assert counters.get("repair.rehomings_tried", 0) == 0

    def test_repair_stage_skips_when_full_check_passed(self, small_library):
        """The pipeline stage's gate mirrors the fast path."""
        from repro.core.stages.context import SynthesisContext

        spec = _chain_spec(deadline=0.01)
        clustering = trivial_clustering(spec, small_library)
        arch = Architecture(small_library)
        cpu = arch.new_pe(small_library.pe_type("CPU"))
        for name in clustering.clusters:
            _place(arch, clustering, name, cpu.id)
        tracer = Tracer()
        _, _, current = _evaluate(
            spec, small_library, clustering, arch, tracer
        )
        ctx = SynthesisContext.begin(spec, library=small_library)
        ctx.full = current
        assert Repair().should_run(ctx) is (not current.report.all_met)


class TestNonConvergence:
    def test_unfixable_system_returned_infeasible_not_raised(
        self, small_library
    ):
        """When no re-homing can help (the one task's execution time
        alone exceeds the deadline on every resource), repair gives up
        cleanly: the verdict comes back with ``all_met`` False and
        badness no worse than it started."""
        g = TaskGraph(name="hopeless", period=0.1, deadline=0.005)
        g.add_task(Task(name="t", exec_times={"CPU": 0.02}, memory=_mem()))
        spec = SystemSpec("hopeless-sys", [g])
        clustering = trivial_clustering(spec, small_library)
        arch = Architecture(small_library)
        cpu = arch.new_pe(small_library.pe_type("CPU"))
        for name in clustering.clusters:
            _place(arch, clustering, name, cpu.id)
        tracer = Tracer()
        assoc, priorities, current = _evaluate(
            spec, small_library, clustering, arch, tracer
        )
        assert not current.report.all_met
        result = repair_pass(
            spec, assoc, clustering, current, priorities, None,
            CrusadeConfig(reconfiguration=False), tracer,
        )
        assert not result.report.all_met
        assert result.badness() <= current.badness()
        counters = tracer.counters.as_dict()
        # It did try (at least one round) but stopped without
        # claiming progress it could not make.
        assert counters.get("repair.rounds", 0) >= 1
        assert counters.get("repair.rehomings_kept", 0) == 0


class TestOffenderWalk:
    def test_critical_chain_walk_rehomes_the_upstream_bottleneck(
        self, small_library
    ):
        """The late task is ``c``, but the bottleneck is its
        predecessor ``b`` stuck on a slow FPGA placement.  The
        offender walk must climb the chain from the late task to
        ``b``'s cluster and re-home *it* -- re-homing ``c`` alone can
        never recover the deadline."""
        spec = _chain_spec(deadline=0.005, b_exec_fpga=0.02)
        clustering = trivial_clustering(spec, small_library)
        b_cluster = clustering.task_to_cluster[("chain", "b")]
        arch = Architecture(small_library)
        cpu = arch.new_pe(small_library.pe_type("CPU"))
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        for name in clustering.clusters:
            _place(arch, clustering, name,
                   fpga.id if name == b_cluster else cpu.id)
        sink = MemorySink()
        tracer = Tracer(sinks=[sink])
        assoc, priorities, current = _evaluate(
            spec, small_library, clustering, arch, tracer
        )
        assert not current.report.all_met
        result = repair_pass(
            spec, assoc, clustering, current, priorities, None,
            CrusadeConfig(reconfiguration=False), tracer,
        )
        assert result.report.all_met
        solved = sink.named("repair.solved")
        assert solved and solved[-1].fields["cluster"] == b_cluster
        placement = result.arch.placement_of(b_cluster)
        assert result.arch.pe(placement[0]).pe_type.name == "CPU"
