"""The staged pipeline: runner semantics and policy hooks."""

import pytest

from repro import CrusadeConfig, Tracer, crusade
from repro.core.stages import (
    POLICIES,
    Stage,
    SynthesisContext,
    SynthesisPolicy,
    default_stages,
    register_policy,
    resolve_policy,
    run_stages,
)
from repro.errors import SpecificationError


class TestStageRunner:
    def test_runs_and_skips_are_counted_and_phased(self, tiny_spec):
        ran = []

        class Always(Stage):
            name = "always"

            def run(self, ctx):
                ran.append(self.name)

        class Never(Stage):
            name = "never"

            def should_run(self, ctx):
                return False

            def run(self, ctx):  # pragma: no cover - must not run
                raise AssertionError("skipped stage must not run")

        class Unphased(Always):
            name = "unphased"

            @property
            def phase_name(self):
                return None

        tracer = Tracer()
        ctx = SynthesisContext.begin(tiny_spec, tracer=tracer)
        out = run_stages(ctx, [Always(), Never(), Unphased()])
        assert out is ctx
        assert ran == ["always", "unphased"]
        counters = tracer.counters.as_dict()
        assert counters["stage.always.runs"] == 1
        assert counters["stage.never.skipped"] == 1
        assert counters["stage.unphased.runs"] == 1
        assert "always" in tracer.timers.as_dict()
        assert "unphased" not in tracer.timers.as_dict()

    def test_default_pipeline_order_matches_figure5(self):
        assert [s.name for s in default_stages()] == [
            "preprocess", "clustering", "allocation", "full_check",
            "repair", "merge", "interface", "finalize",
        ]

    def test_crusade_emits_stage_counters(self, small_library, tiny_spec):
        tracer = Tracer()
        result = crusade(
            tiny_spec,
            library=small_library,
            config=CrusadeConfig(reconfiguration=False),
            tracer=tracer,
        )
        assert result.feasible
        counters = tracer.counters.as_dict()
        for name in ("preprocess", "clustering", "allocation",
                     "full_check", "finalize"):
            assert counters["stage.%s.runs" % name] == 1
        # Reconfiguration off: the merge stage must be gated out, and
        # a feasible full check gates repair out.
        assert counters["stage.merge.skipped"] == 1
        assert counters["stage.repair.skipped"] == 1


class TestPolicyRegistry:
    def test_resolve_by_name_object_and_default(self):
        default = resolve_policy(None)
        assert default is POLICIES["default"]
        assert resolve_policy("largest-first").name == "largest-first"
        custom = SynthesisPolicy(name="inline")
        assert resolve_policy(custom) is custom

    def test_unknown_policy_raises_with_known_names(self, tiny_spec):
        with pytest.raises(SpecificationError, match="default"):
            resolve_policy("no-such-policy")
        with pytest.raises(SpecificationError):
            crusade(tiny_spec, config=CrusadeConfig(policy="no-such-policy"))

    def test_register_policy_is_by_name(self):
        probe = SynthesisPolicy(name="probe-policy")
        try:
            assert register_policy(probe) is probe
            assert resolve_policy("probe-policy") is probe
        finally:
            POLICIES.pop("probe-policy", None)


class TestPolicyHooks:
    def test_largest_first_orders_clusters_by_size(self, synthetic_spec):
        from repro.cluster.clustering import cluster_spec
        from repro.cluster.priority import PriorityContext
        from repro.resources.catalog import default_library

        library = default_library()
        clustering = cluster_spec(
            synthetic_spec, library,
            context=PriorityContext.pessimistic(library),
        )
        order = resolve_policy("largest-first").cluster_order(clustering)
        sizes = [c.size for c in order]
        assert sizes == sorted(sizes, reverse=True)
        assert {c.name for c in order} == set(clustering.clusters)

    def test_reuse_first_prefers_existing_hardware(self):
        from types import SimpleNamespace

        from repro.alloc.array import AllocationKind

        options = [
            SimpleNamespace(kind=AllocationKind.NEW_PE, tag=0),
            SimpleNamespace(kind=AllocationKind.EXISTING_MODE, tag=1),
            SimpleNamespace(kind=AllocationKind.NEW_PE, tag=2),
            SimpleNamespace(kind=AllocationKind.EXISTING_MODE, tag=3),
        ]
        ordered = resolve_policy("reuse-first").candidate_order(options, None)
        assert [o.tag for o in ordered] == [1, 3, 0, 2]

    def test_policy_variants_synthesize_valid_results(self, synthetic_spec):
        """Non-default policies explore different orders but must
        still produce deadline-feasible architectures here."""
        for name in ("largest-first", "reuse-first"):
            result = crusade(
                synthetic_spec,
                config=CrusadeConfig(
                    max_explicit_copies=2, reconfiguration=False, policy=name
                ),
            )
            assert result.feasible, name

    def test_default_policy_matches_unset(self, synthetic_spec):
        from repro.io.result_json import canonical_result_json

        config = CrusadeConfig(max_explicit_copies=2, reconfiguration=False)
        named = CrusadeConfig(
            max_explicit_copies=2, reconfiguration=False, policy="default"
        )
        assert canonical_result_json(crusade(synthetic_spec, config=config)) \
            == canonical_result_json(crusade(synthetic_spec, config=named))

    def test_accept_merge_hook_steers_the_merge_loop(self, small_library):
        """A reject-everything acceptance rule must suppress the merge
        the default rule accepts on the canonical two-FPGA setup, and
        a custom rule must also disable the dollar-cost prune cut
        (whose admissibility argument assumes the default rule)."""
        from repro import DelayPolicy, SystemSpec, Task, TaskGraph
        from repro.arch.architecture import Architecture
        from repro.cluster.clustering import cluster_spec
        from repro.cluster.priority import PriorityContext
        from repro.core.stages.support import compute_priorities
        from repro.graph.association import AssociationArray
        from repro.reconfig.compatibility import CompatibilityAnalysis
        from repro.reconfig.merge import merge_reconfigurable_pes
        from repro.alloc.evaluate import evaluate_architecture

        def hw_graph(name, est):
            g = TaskGraph(name=name, period=1.0, deadline=0.5, est=est)
            g.add_task(Task(name=name + ".t", exec_times={"FPGA": 1e-3},
                            area_gates=800, pins=10))
            return g

        spec = SystemSpec(
            "s", [hw_graph("ga", est=0.0), hw_graph("gb", est=0.5)],
            compatibility=[("ga", "gb")],
        )
        clustering = cluster_spec(spec, small_library)
        compat = CompatibilityAnalysis.from_spec(spec)
        arch = Architecture(small_library)
        for name in ("ga/c000", "gb/c000"):
            c = clustering.clusters[name]
            pe = arch.new_pe(small_library.pe_type("FPGA"))
            arch.allocate_cluster(
                name, pe.id, 0, gates=c.area_gates, pins=c.pins
            )
        assoc = AssociationArray(spec, max_explicit_copies=2)
        priorities = compute_priorities(
            spec, PriorityContext.pessimistic(small_library)
        )

        def evaluate(candidate):
            return evaluate_architecture(
                spec, assoc, clustering, candidate, priorities,
                boot_time_fn=lambda pe, mode: 0.01,
            )

        initial = evaluate(arch)
        assert initial.feasible
        default = merge_reconfigurable_pes(
            spec, clustering, compat, DelayPolicy(), initial, evaluate
        )
        assert default.merges_accepted == 1
        vetoed = merge_reconfigurable_pes(
            spec, clustering, compat, DelayPolicy(), initial, evaluate,
            prune=True, accept=lambda verdict, incumbent: False,
        )
        assert vetoed.merges_accepted == 0
        assert vetoed.merges_rejected >= 1
        assert vetoed.result.cost == initial.cost
