"""CrusadeConfig validation and result reporting units."""

import pytest

from repro import CrusadeConfig, SpecificationError, crusade


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(max_explicit_copies=0),
        dict(max_cluster_size=0),
        dict(max_existing_options=0),
        dict(link_strategies=()),
        dict(interface_retries=-1),
    ])
    def test_rejects(self, kwargs):
        with pytest.raises(SpecificationError):
            CrusadeConfig(**kwargs)

    def test_fast_inner_loop_auto(self):
        config = CrusadeConfig(fast_threshold_tasks=100)
        assert not config.use_fast_inner_loop(50)
        assert config.use_fast_inner_loop(150)

    def test_fast_inner_loop_forced(self):
        assert CrusadeConfig(fast_inner_loop=True).use_fast_inner_loop(1)
        assert not CrusadeConfig(fast_inner_loop=False).use_fast_inner_loop(10_000)

    def test_defaults_match_paper(self):
        config = CrusadeConfig()
        assert config.reconfiguration is True
        assert config.clustering is True
        assert config.delay_policy.eruf == 0.70
        assert config.delay_policy.epuf == 0.80
        assert config.preemption is True


class TestResultReporting:
    @pytest.fixture(scope="class")
    def result(self, request):
        from repro import GeneratorConfig, generate_spec

        spec = generate_spec(GeneratorConfig(
            seed=2, n_graphs=2, tasks_per_graph=6, compat_group_size=2,
            utilization=0.2,
        ))
        return crusade(spec, config=CrusadeConfig(max_explicit_copies=2))

    def test_summary_mentions_feasibility(self, result):
        assert "feasible" in result.summary()

    def test_breakdown_sums_to_cost(self, result):
        assert result.breakdown().total == pytest.approx(result.cost)

    def test_counts_consistent(self, result):
        assert result.n_pes == len(result.arch.pes)
        assert result.n_links == len(result.arch.links)
        assert result.n_modes == result.arch.total_modes()

    def test_cpu_seconds_positive(self, result):
        assert result.cpu_seconds > 0
