"""CoSynthesisResult row semantics on FT results and merge bookkeeping."""

import pytest

from repro import CrusadeConfig, GeneratorConfig, crusade_ft, generate_spec


@pytest.fixture(scope="module")
def ft_pair():
    spec = generate_spec(GeneratorConfig(
        seed=61, n_graphs=4, tasks_per_graph=7, compat_group_size=2,
        utilization=0.18, hw_only_fraction=0.35, mixed_fraction=0.15,
    ))
    baseline = crusade_ft(spec, config=CrusadeConfig(
        reconfiguration=False, max_explicit_copies=2))
    reconfig = crusade_ft(spec, config=CrusadeConfig(
        reconfiguration=True, max_explicit_copies=2), baseline=baseline)
    return baseline, reconfig


class TestFtRows:
    def test_row_counts_include_spares(self, ft_pair):
        baseline, _ = ft_pair
        row = baseline.table_row()
        assert row["pes"] == baseline.base.n_pes + baseline.spares.total_spares()
        assert row["cost"] == pytest.approx(
            round(baseline.base.cost + baseline.spares.spare_cost)
        )

    def test_ft_spec_is_the_transformed_one(self, ft_pair):
        baseline, _ = ft_pair
        assert baseline.spec.name.endswith("+ft")
        assert baseline.spec is baseline.base.spec

    def test_reconfig_never_loses_under_ft(self, ft_pair):
        baseline, reconfig = ft_pair
        assert baseline.feasible and reconfig.feasible
        assert reconfig.base.cost <= baseline.base.cost + 1e-9

    def test_transform_shared_shape(self, ft_pair):
        baseline, reconfig = ft_pair
        # Same deterministic transform on both runs.
        assert (baseline.transform.n_assertions
                == reconfig.transform.n_assertions)
        assert (baseline.transform.n_duplicates
                == reconfig.transform.n_duplicates)
