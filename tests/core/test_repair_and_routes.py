"""Driver internals: the repair loop, route selection, coupled graphs."""

import pytest

from repro import (
    CrusadeConfig,
    GeneratorConfig,
    SystemSpec,
    Task,
    TaskGraph,
    crusade,
    generate_spec,
)
from repro.arch.architecture import Architecture
from repro.cluster.clustering import cluster_spec
from repro.core.crusade import _coupled_graphs
from repro.graph.task import MemoryRequirement


class TestCoupledGraphs:
    def test_shared_pe_couples(self, small_library):
        def graph(name):
            g = TaskGraph(name=name, period=0.1, deadline=0.05)
            g.add_task(Task(name=name + ".t", exec_times={"CPU": 1e-3},
                            memory=MemoryRequirement(program=64)))
            return g

        spec = SystemSpec("s", [graph("a"), graph("b"), graph("c")])
        clustering = cluster_spec(spec, small_library)
        arch = Architecture(small_library)
        cpu1 = arch.new_pe(small_library.pe_type("CPU"))
        cpu2 = arch.new_pe(small_library.pe_type("CPU"))
        arch.allocate_cluster("a/c000", cpu1.id, 0)
        arch.allocate_cluster("b/c000", cpu1.id, 0)
        arch.allocate_cluster("c/c000", cpu2.id, 0)
        assert _coupled_graphs(arch, clustering, "a") == ["a", "b"]
        assert _coupled_graphs(arch, clustering, "c") == ["c"]

    def test_unallocated_graph_couples_only_itself(self, small_library):
        g = TaskGraph(name="solo", period=0.1, deadline=0.05)
        g.add_task(Task(name="solo.t", exec_times={"CPU": 1e-3},
                        memory=MemoryRequirement(program=64)))
        spec = SystemSpec("s", [g])
        clustering = cluster_spec(spec, small_library)
        arch = Architecture(small_library)
        assert _coupled_graphs(arch, clustering, "solo") == ["solo"]


class TestRepair:
    def test_fast_inner_loop_end_state_matches_full(self):
        """The fast inner loop plus repair must converge to a feasible
        system whenever the exhaustive (slow) loop does."""
        spec = generate_spec(GeneratorConfig(
            seed=77, n_graphs=5, tasks_per_graph=10, compat_group_size=2,
            utilization=0.25, hw_only_fraction=0.3, mixed_fraction=0.2,
        ))
        slow = crusade(spec, config=CrusadeConfig(
            reconfiguration=False, fast_inner_loop=False, max_explicit_copies=2))
        fast = crusade(spec, config=CrusadeConfig(
            reconfiguration=False, fast_inner_loop=True, max_explicit_copies=2))
        assert slow.feasible
        assert fast.feasible

    def test_overload_is_repaired(self):
        """A workload dense enough to oversubscribe the first CPU must
        end up spread across resources with utilization <= 1."""
        spec = generate_spec(GeneratorConfig(
            seed=88, n_graphs=6, tasks_per_graph=12, compat_group_size=1,
            utilization=0.5, hw_only_fraction=0.0, mixed_fraction=0.0,
            periods=(0.0512,),
        ))
        result = crusade(spec, config=CrusadeConfig(
            reconfiguration=False, max_explicit_copies=2))
        assert not result.report.overloaded, result.report.overloaded


class TestRouteSelection:
    def test_baseline_donation_used(self, small_library, hw_pair_spec):
        baseline = crusade(
            hw_pair_spec, library=small_library,
            config=CrusadeConfig(reconfiguration=False, max_explicit_copies=2),
        )
        reconfig = crusade(
            hw_pair_spec, library=small_library,
            config=CrusadeConfig(reconfiguration=True, max_explicit_copies=2),
            baseline=baseline,
        )
        assert reconfig.feasible
        assert reconfig.cost <= baseline.cost

    def test_internal_baseline_computed_when_missing(
        self, small_library, hw_pair_spec
    ):
        # Without a donated baseline, route (b) builds its own; the
        # result must still never lose to the reconfiguration-free run.
        reconfig = crusade(
            hw_pair_spec, library=small_library,
            config=CrusadeConfig(reconfiguration=True, max_explicit_copies=2),
        )
        baseline = crusade(
            hw_pair_spec, library=small_library,
            config=CrusadeConfig(reconfiguration=False, max_explicit_copies=2),
        )
        assert reconfig.cost <= baseline.cost + 1e-9

    def test_merge_stats_reported(self, small_library, hw_pair_spec):
        result = crusade(
            hw_pair_spec, library=small_library,
            config=CrusadeConfig(max_explicit_copies=2),
        )
        assert set(result.merge_stats) <= {
            "accepted", "rejected", "mode_combines", "rounds",
        }
