"""End-to-end CRUSADE driver tests (the Figure 5 flow)."""

import pytest

from repro import (
    CrusadeConfig,
    GeneratorConfig,
    SystemSpec,
    Task,
    TaskGraph,
    crusade,
    generate_spec,
    render_architecture,
)
from repro.graph.task import MemoryRequirement


class TestBasicSynthesis:
    def test_single_software_graph(self, small_library, tiny_spec, fast_config):
        result = crusade(tiny_spec, library=small_library, config=fast_config)
        assert result.feasible
        assert result.n_pes >= 1
        assert result.report.all_met
        # Every cluster allocated.
        for name in result.clustering.clusters:
            assert result.arch.is_allocated(name)

    def test_deterministic(self, small_library, tiny_spec, fast_config):
        a = crusade(tiny_spec, library=small_library, config=fast_config)
        b = crusade(tiny_spec, library=small_library, config=fast_config)
        assert a.cost == b.cost
        assert a.n_pes == b.n_pes
        assert sorted(a.arch.pes) == sorted(b.arch.pes)

    def test_infeasible_reported_not_raised(self, small_library, fast_config):
        g = TaskGraph(name="impossible", period=0.1, deadline=1e-6)
        g.add_task(Task(name="t", exec_times={"CPU": 1e-3},
                        memory=MemoryRequirement(program=64)))
        spec = SystemSpec("s", [g])
        result = crusade(spec, library=small_library, config=fast_config)
        assert not result.feasible
        assert result.report.n_missed > 0

    def test_synthetic_system(self, fast_config, synthetic_spec):
        result = crusade(synthetic_spec, config=fast_config)
        assert result.feasible, result.report.lateness
        assert result.cpu_seconds > 0
        assert result.interface is not None

    def test_result_table_row(self, small_library, tiny_spec, fast_config):
        row = crusade(tiny_spec, library=small_library, config=fast_config).table_row()
        assert row["example"] == "tiny"
        assert row["tasks"] == 3
        assert row["feasible"] is True

    def test_render_architecture(self, small_library, tiny_spec, fast_config):
        result = crusade(tiny_spec, library=small_library, config=fast_config)
        text = render_architecture(result)
        assert "Processing elements" in text
        assert "Cost breakdown" in text


class TestReconfigurationBehaviour:
    def test_reconfig_never_costs_more_than_baseline(self, fast_config):
        spec = generate_spec(GeneratorConfig(
            seed=21, n_graphs=4, tasks_per_graph=12, compat_group_size=2,
            utilization=0.2, hw_only_fraction=0.4, mixed_fraction=0.15,
        ))
        baseline = crusade(spec, config=CrusadeConfig(
            reconfiguration=False, max_explicit_copies=2))
        reconfig = crusade(spec, config=CrusadeConfig(
            reconfiguration=True, max_explicit_copies=2), baseline=baseline)
        assert baseline.feasible and reconfig.feasible
        # Route (b) guarantees the guard: never worse than baseline.
        assert reconfig.cost <= baseline.cost + 1e-9

    def test_hw_pair_shares_one_fpga(self, small_library, hw_pair_spec, fast_config):
        result = crusade(hw_pair_spec, library=small_library, config=fast_config)
        assert result.feasible
        ppes = result.arch.programmable_pes()
        assert len(ppes) == 1
        assert ppes[0].n_modes == 2
        assert result.reconfigurations >= 1

    def test_baseline_hw_pair_needs_one_device_still(
        self, small_library, hw_pair_spec
    ):
        # Both tiny circuits fit one mode, so even the baseline shares
        # the FPGA -- in a single configuration.
        result = crusade(
            hw_pair_spec,
            library=small_library,
            config=CrusadeConfig(reconfiguration=False, max_explicit_copies=2),
        )
        assert result.feasible
        ppes = result.arch.programmable_pes()
        assert len(ppes) == 1
        assert ppes[0].n_modes == 1

    def test_boot_time_respected_by_interface(self, small_library, hw_pair_spec,
                                              fast_config):
        result = crusade(hw_pair_spec, library=small_library, config=fast_config)
        assert result.interface is not None
        for device in result.interface.devices.values():
            worst = max(device.runtime_boot_times.values() or [0.0])
            assert worst <= hw_pair_spec.boot_time_requirement + 1e-12


class TestConfigKnobs:
    def test_clustering_off(self, small_library, tiny_spec):
        config = CrusadeConfig(clustering=False, max_explicit_copies=2)
        result = crusade(tiny_spec, library=small_library, config=config)
        assert result.feasible
        # One cluster per task.
        assert result.clustering.n_clusters == 3

    def test_validation_warnings_propagate(self, small_library, fast_config):
        g = TaskGraph(name="w", period=0.1, deadline=0.2)  # deadline > period
        g.add_task(Task(name="t", exec_times={"CPU": 1e-4},
                        memory=MemoryRequirement(program=64)))
        spec = SystemSpec("s", [g])
        result = crusade(spec, library=small_library, config=fast_config)
        assert any("deadline" in w for w in result.warnings)
