"""Validator-oracle fuzzing: the independent validators accept every
end-to-end synthesis on randomly generated specifications.

:mod:`repro.sched.validate` and :mod:`repro.arch.validate` re-derive
the schedule/architecture invariants from scratch, so running them
over a fuzzed population of synthesized systems is the strongest
correctness oracle the suite has.  Small systems run in the tier-1
pass; sizes above the cutoff carry the ``slow`` marker.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CrusadeConfig, GeneratorConfig, crusade, generate_spec
from repro.arch.validate import validate_architecture
from repro.graph.association import AssociationArray
from repro.sched.validate import validate_schedule

#: Systems at or below this many tasks fuzz in the fast (tier-1) pass.
SIZE_CUTOFF_TASKS = 16


def synthesize_and_validate(seed, n_graphs, tasks, reconfig):
    spec = generate_spec(GeneratorConfig(
        seed=seed, n_graphs=n_graphs, tasks_per_graph=tasks,
        compat_group_size=2, utilization=0.2,
        hw_only_fraction=0.35, mixed_fraction=0.15,
    ))
    config = CrusadeConfig(reconfiguration=reconfig, max_explicit_copies=2)
    result = crusade(spec, config=config)
    assoc = AssociationArray(
        spec, max_explicit_copies=config.max_explicit_copies
    )
    schedule_report = validate_schedule(
        result.schedule, spec, assoc, result.clustering, result.arch
    )
    assert schedule_report.ok, schedule_report.violations[:5]
    arch_report = validate_architecture(
        result.arch, result.clustering, spec=spec, policy=config.delay_policy
    )
    assert arch_report.ok, arch_report.violations[:5]


@settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=200),
    n_graphs=st.integers(min_value=1, max_value=2),
    tasks=st.integers(min_value=3, max_value=SIZE_CUTOFF_TASKS // 2),
    reconfig=st.booleans(),
)
def test_validators_accept_fuzzed_synthesis(seed, n_graphs, tasks, reconfig):
    synthesize_and_validate(seed, n_graphs, tasks, reconfig)


@pytest.mark.slow
@settings(
    max_examples=6,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=200),
    n_graphs=st.integers(min_value=3, max_value=4),
    tasks=st.integers(min_value=9, max_value=14),
    reconfig=st.booleans(),
)
def test_validators_accept_fuzzed_synthesis_large(seed, n_graphs, tasks, reconfig):
    assert n_graphs * tasks > SIZE_CUTOFF_TASKS
    synthesize_and_validate(seed, n_graphs, tasks, reconfig)
