"""End-to-end CRUSADE-FT driver tests (Section 6)."""

import pytest

from repro import (
    CrusadeConfig,
    FtConfig,
    GeneratorConfig,
    crusade,
    crusade_ft,
    generate_spec,
)


@pytest.fixture(scope="module")
def ft_spec():
    return generate_spec(GeneratorConfig(
        seed=31, n_graphs=4, tasks_per_graph=8, compat_group_size=2,
        utilization=0.18, hw_only_fraction=0.35, mixed_fraction=0.15,
    ))


@pytest.fixture(scope="module")
def ft_result(ft_spec):
    return crusade_ft(
        ft_spec, config=CrusadeConfig(max_explicit_copies=2)
    )


class TestCrusadeFt:
    def test_feasible(self, ft_result):
        assert ft_result.feasible
        assert ft_result.base.report.all_met

    def test_transformation_grew_the_spec(self, ft_spec, ft_result):
        assert ft_result.spec.total_tasks > ft_spec.total_tasks
        assert ft_result.transform.n_assertions + ft_result.transform.n_duplicates > 0

    def test_cost_includes_spares(self, ft_result):
        assert ft_result.cost == pytest.approx(
            ft_result.base.cost + ft_result.spares.spare_cost
        )
        assert ft_result.n_pes == (
            ft_result.base.n_pes + ft_result.spares.total_spares()
        )

    def test_availability_requirements_met(self, ft_result):
        assert ft_result.spares.met
        for name, minutes in ft_result.spec.unavailability.items():
            assert ft_result.spares.downtime_minutes(name) <= minutes + 1e-9

    def test_ft_costs_more_than_plain(self, ft_spec, ft_result):
        plain = crusade(ft_spec, config=CrusadeConfig(max_explicit_copies=2))
        assert ft_result.cost > plain.cost

    def test_table_row(self, ft_result):
        row = ft_result.table_row()
        assert row["feasible"] is True
        assert row["cost"] > 0

    def test_ft_reconfig_saves_over_ft_baseline(self, ft_spec):
        baseline = crusade_ft(
            ft_spec,
            config=CrusadeConfig(reconfiguration=False, max_explicit_copies=2),
        )
        reconfig = crusade_ft(
            ft_spec,
            config=CrusadeConfig(reconfiguration=True, max_explicit_copies=2),
            baseline=baseline,
        )
        assert baseline.feasible and reconfig.feasible
        assert reconfig.base.cost <= baseline.base.cost + 1e-9

    def test_required_coverage_flows_through(self, ft_spec):
        strict = crusade_ft(
            ft_spec,
            config=CrusadeConfig(max_explicit_copies=2),
            ft_config=FtConfig(required_coverage=0.999),
        )
        # Coverage 0.999 defeats the generator's 0.95 assertions, so
        # everything falls back to duplicate-and-compare.
        assert strict.transform.n_assertions == 0
        assert strict.transform.n_duplicates > 0
