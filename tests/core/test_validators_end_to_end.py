"""Property battery: every synthesized system passes the independent
schedule and architecture validators.

These are the strongest tests in the suite: they re-derive the
invariants from scratch (release times, precedence, resource
exclusivity, mode-window consistency, capacity caps, allocation-table
cross-references) and run them against CRUSADE's actual output on a
population of generated workloads.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CrusadeConfig, GeneratorConfig, crusade, generate_spec
from repro.arch.validate import validate_architecture
from repro.graph.association import AssociationArray
from repro.sched.validate import validate_schedule


def synthesize(seed, n_graphs=3, tasks=8, group=2, reconfig=True):
    spec = generate_spec(GeneratorConfig(
        seed=seed, n_graphs=n_graphs, tasks_per_graph=tasks,
        compat_group_size=group, utilization=0.2,
        hw_only_fraction=0.35, mixed_fraction=0.15,
    ))
    config = CrusadeConfig(reconfiguration=reconfig, max_explicit_copies=2)
    result = crusade(spec, config=config)
    return spec, config, result


def assert_valid(spec, config, result):
    assoc = AssociationArray(spec, max_explicit_copies=config.max_explicit_copies)
    schedule_report = validate_schedule(
        result.schedule, spec, assoc, result.clustering, result.arch
    )
    assert schedule_report.ok, schedule_report.violations[:5]
    arch_report = validate_architecture(
        result.arch, result.clustering, spec=spec, policy=config.delay_policy
    )
    assert arch_report.ok, arch_report.violations[:5]


class TestValidatorsOnSynthesis:
    @pytest.mark.parametrize("seed", [1, 7, 13])
    def test_reconfig_synthesis_is_valid(self, seed):
        spec, config, result = synthesize(seed)
        assert result.feasible
        assert_valid(spec, config, result)

    @pytest.mark.parametrize("seed", [1, 7])
    def test_baseline_synthesis_is_valid(self, seed):
        spec, config, result = synthesize(seed, reconfig=False)
        assert result.feasible
        assert_valid(spec, config, result)

    def test_figure2_is_valid(self):
        from repro.bench.figure2 import figure2_library, figure2_spec

        spec = figure2_spec()
        config = CrusadeConfig(max_explicit_copies=4)
        result = crusade(spec, library=figure2_library(), config=config)
        assert result.feasible
        assert_valid(spec, config, result)

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        group=st.integers(min_value=1, max_value=3),
    )
    def test_random_workloads_produce_valid_output(self, seed, group):
        """Even when the heuristic cannot meet every deadline, the
        schedule and architecture it returns must be internally
        consistent."""
        spec, config, result = synthesize(
            seed, n_graphs=3, tasks=6, group=group
        )
        assert_valid(spec, config, result)


class TestValidatorsCatchCorruption:
    """The validators must actually detect broken systems."""

    def test_detects_missing_link(self, ):
        spec, config, result = synthesize(3)
        # Remove every link: any cross-PE edge becomes a violation.
        if not result.arch.links:
            pytest.skip("single-PE architecture")
        result.arch.links.clear()
        report = validate_architecture(
            result.arch, result.clustering, spec=spec, policy=config.delay_policy
        )
        cross_pe = {
            result.arch.placement_of(c)[0]
            for c in result.arch.cluster_alloc
        }
        if len(cross_pe) > 1:
            assert not report.ok

    def test_detects_counter_corruption(self):
        spec, config, result = synthesize(3)
        ppes = result.arch.programmable_pes()
        if not ppes:
            pytest.skip("no programmable PEs")
        ppes[0].mode(0).gates_used += 1
        report = validate_architecture(result.arch, result.clustering)
        assert not report.ok

    def test_detects_tampered_schedule(self):
        spec, config, result = synthesize(3)
        assoc = AssociationArray(
            spec, max_explicit_copies=config.max_explicit_copies
        )
        # Move one task before its copy's arrival.
        key = max(result.schedule.tasks, key=lambda k: result.schedule.tasks[k].start)
        placed = result.schedule.tasks[key]
        placed.start = -1.0
        report = validate_schedule(
            result.schedule, spec, assoc, result.clustering, result.arch
        )
        assert not report.ok
