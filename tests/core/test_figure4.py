"""The Figure 4 allocation walk-through.

Four clusters: C0 is software (CPU+ROM), C1-C3 need an FPGA.  C1 and
C2 are non-overlapping (compatible); C3 overlaps C1.  The paper's
outcome: C0 on a processor; C1 into FPGA_1^1 (instance 1, mode 1); C2
into a new mode FPGA_2^1 of the *same* instance; C3 joins C1's mode
because its execution overlaps C1's.  We reproduce the final
architecture shape of Figure 4(e).
"""

import pytest

from repro import CrusadeConfig, SystemSpec, Task, TaskGraph, crusade
from repro.graph.task import MemoryRequirement


@pytest.fixture
def figure4_spec():
    # C0: control software, runs all the time.
    g0 = TaskGraph(name="C0", period=0.5, deadline=0.25)
    g0.add_task(Task(name="C0.t", exec_times={"CPU": 2e-3},
                     memory=MemoryRequirement(program=8192)))
    # C1: hardware, first half of the 1 s frame.
    g1 = TaskGraph(name="C1", period=1.0, deadline=0.5, est=0.0)
    g1.add_task(Task(name="C1.t", exec_times={"FPGA": 1e-3},
                     area_gates=700, pins=12))
    # C2: hardware, second half -- compatible with C1.
    g2 = TaskGraph(name="C2", period=1.0, deadline=0.5, est=0.5)
    g2.add_task(Task(name="C2.t", exec_times={"FPGA": 1e-3},
                     area_gates=700, pins=12))
    # C3: hardware, overlaps C1's window.
    g3 = TaskGraph(name="C3", period=1.0, deadline=0.5, est=0.0)
    g3.add_task(Task(name="C3.t", exec_times={"FPGA": 1e-3},
                     area_gates=600, pins=12))
    return SystemSpec(
        "figure4",
        [g0, g1, g2, g3],
        compatibility=[("C1", "C2"), ("C2", "C3")],
        boot_time_requirement=0.2,
    )


def test_figure4_architecture_shape(small_library, figure4_spec):
    result = crusade(
        figure4_spec,
        library=small_library,
        config=CrusadeConfig(max_explicit_copies=2),
    )
    assert result.feasible

    # C0 sits on a processor with its memory.
    c0_pe, _ = result.arch.placement_of("C0/c000")
    assert result.arch.pe(c0_pe).is_processor

    # All three hardware clusters share ONE FPGA instance...
    placements = {
        name: result.arch.placement_of(name + "/c000") for name in ("C1", "C2", "C3")
    }
    fpga_ids = {pe for pe, _ in placements.values()}
    assert len(fpga_ids) == 1
    fpga = result.arch.pe(fpga_ids.pop())
    assert fpga.is_programmable

    # ...with exactly two modes: C1 and C3 together (overlapping), C2
    # in its own configuration (Figure 4(e)).
    assert fpga.n_modes == 2
    assert placements["C1"][1] == placements["C3"][1]
    assert placements["C2"][1] != placements["C1"][1]


def test_figure4_baseline_needs_more_silicon(small_library, figure4_spec):
    baseline = crusade(
        figure4_spec,
        library=small_library,
        config=CrusadeConfig(reconfiguration=False, max_explicit_copies=2),
    )
    reconfig = crusade(
        figure4_spec,
        library=small_library,
        config=CrusadeConfig(max_explicit_copies=2),
        baseline=baseline,
    )
    assert baseline.feasible and reconfig.feasible
    # C1+C2+C3 = 2000 gates > 1400 usable: the baseline buys a second
    # FPGA; reconfiguration time-shares one.
    assert len(baseline.arch.programmable_pes()) == 2
    assert len(reconfig.arch.programmable_pes()) == 1
    assert reconfig.cost < baseline.cost
