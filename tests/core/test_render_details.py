"""render_architecture detail coverage: replicas, chains, interfaces."""

import pytest

from repro import CrusadeConfig, crusade, render_architecture
from repro.bench.figure2 import figure2_library, figure2_spec


@pytest.fixture(scope="module")
def figure2_result():
    return crusade(
        figure2_spec(), library=figure2_library(),
        config=CrusadeConfig(max_explicit_copies=4),
    )


class TestRenderDetails:
    def test_modes_listed_with_residents(self, figure2_result):
        text = render_architecture(figure2_result)
        assert "mode 0" in text and "mode 1" in text
        # T1 appears in both mode lines (replicated).
        mode_lines = [l for l in text.splitlines() if "mode " in l]
        assert sum("T1/c000" in l for l in mode_lines) == 2

    def test_interface_section_present(self, figure2_result):
        text = render_architecture(figure2_result)
        assert "Programming interfaces" in text
        assert "worst boot" in text

    def test_empty_links_rendered(self, figure2_result):
        text = render_architecture(figure2_result)
        assert "Links:" in text
        assert "(none)" in text

    def test_cost_breakdown_totals(self, figure2_result):
        text = render_architecture(figure2_result)
        assert "total" in text
        # The rendered total matches the result's cost.
        total_line = [l for l in text.splitlines() if "total" in l][0]
        assert "%.0f" % figure2_result.cost in total_line
