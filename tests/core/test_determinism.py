"""Determinism: co-synthesis is a pure function of its inputs.

The paper's heuristic must be reproducible for its tables to mean
anything; here two independent runs on the same specification must
produce byte-identical result exports (architecture, schedule,
interfaces -- everything).
"""

import json

import pytest

from repro import CrusadeConfig, GeneratorConfig, Tracer, crusade, crusade_ft, generate_spec
from repro.io.result_json import result_to_dict


def run_once(seed, reconfig=True, tracer=None):
    spec = generate_spec(GeneratorConfig(
        seed=seed, n_graphs=3, tasks_per_graph=8, compat_group_size=2,
        utilization=0.2, hw_only_fraction=0.35, mixed_fraction=0.15,
    ))
    config = CrusadeConfig(reconfiguration=reconfig, max_explicit_copies=2)
    result = crusade(spec, config=config, tracer=tracer)
    payload = result_to_dict(result)
    # Timing (and the stats block that carries it) legitimately varies.
    payload.pop("cpu_seconds", None)
    payload.pop("stats", None)
    return payload


@pytest.mark.parametrize("seed", [3, 19])
def test_reconfig_synthesis_bit_identical(seed):
    a = run_once(seed)
    b = run_once(seed)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_baseline_synthesis_bit_identical():
    a = run_once(5, reconfig=False)
    b = run_once(5, reconfig=False)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


@pytest.mark.parametrize("reconfig", [True, False])
def test_tracing_does_not_perturb_synthesis(reconfig):
    """The tracer is observation-only: enabled vs. disabled runs must
    export byte-identical results (the stats block aside)."""
    untraced = run_once(3, reconfig=reconfig)
    traced = run_once(3, reconfig=reconfig, tracer=Tracer())
    assert json.dumps(untraced, sort_keys=True) == json.dumps(traced, sort_keys=True)


def test_ft_headline_numbers_reproducible():
    spec = generate_spec(GeneratorConfig(
        seed=9, n_graphs=3, tasks_per_graph=7, compat_group_size=2,
        utilization=0.2,
    ))
    config = CrusadeConfig(max_explicit_copies=2)
    a = crusade_ft(spec, config=config)
    b = crusade_ft(spec, config=config)
    assert a.cost == b.cost
    assert a.n_pes == b.n_pes
    assert a.spares.total_spares() == b.spares.total_spares()
