"""Capacity checks: gates, pins, memory, exclusions, ERUF/EPUF."""

import pytest

from repro import DelayPolicy
from repro.arch.architecture import Architecture
from repro.cluster.clustering import Cluster, ClusteringResult
from repro.graph.task import MemoryRequirement
from repro.alloc.capacity import (
    exclusion_conflict,
    fits_in_ppe_mode,
    fits_new_pe_type,
    fits_on_asic,
    fits_on_processor,
)
from repro.units import MB


def make_cluster(name="c0", graph="g", tasks=("t0",), pe_types=("CPU", "FPGA"),
                 exclusions=(), gates=0, pins=0, memory=0):
    return Cluster(
        name=name,
        graph=graph,
        task_names=list(tasks),
        allowed_pe_types=set(pe_types),
        exclusions=set(exclusions),
        area_gates=gates,
        pins=pins,
        memory=MemoryRequirement(program=memory),
    )


def make_clustering(*clusters):
    return ClusteringResult(
        clusters={c.name: c for c in clusters},
        task_to_cluster={
            (c.graph, t): c.name for c in clusters for t in c.task_names
        },
    )


@pytest.fixture
def arch(small_library):
    return Architecture(small_library)


class TestExclusions:
    def test_no_conflict_on_empty_pe(self, arch, small_library):
        pe = arch.new_pe(small_library.pe_type("CPU"))
        cluster = make_cluster()
        assert not exclusion_conflict(cluster, pe, make_clustering(cluster))

    def test_cluster_excluding_resident_task(self, arch, small_library):
        pe = arch.new_pe(small_library.pe_type("CPU"))
        resident = make_cluster(name="r", tasks=("victim",))
        clustering = make_clustering(resident)
        arch.allocate_cluster("r", pe.id, 0)
        newcomer = make_cluster(name="n", tasks=("x",), exclusions=("victim",))
        clustering.clusters["n"] = newcomer
        assert exclusion_conflict(newcomer, pe, clustering)

    def test_resident_excluding_newcomer_task(self, arch, small_library):
        pe = arch.new_pe(small_library.pe_type("CPU"))
        resident = make_cluster(name="r", tasks=("a",), exclusions=("x",))
        clustering = make_clustering(resident)
        arch.allocate_cluster("r", pe.id, 0)
        newcomer = make_cluster(name="n", tasks=("x",))
        clustering.clusters["n"] = newcomer
        assert exclusion_conflict(newcomer, pe, clustering)


class TestProcessorFit:
    def test_fits_within_memory(self, arch, small_library):
        pe = arch.new_pe(small_library.pe_type("CPU"))
        cluster = make_cluster(memory=1 * MB)
        assert fits_on_processor(cluster, pe, make_clustering(cluster))

    def test_memory_overflow_rejected(self, arch, small_library):
        pe = arch.new_pe(small_library.pe_type("CPU"))
        cluster = make_cluster(memory=100 * MB)  # > largest 64 MB bank
        assert not fits_on_processor(cluster, pe, make_clustering(cluster))

    def test_wrong_pe_type_rejected(self, arch, small_library):
        pe = arch.new_pe(small_library.pe_type("CPU"))
        cluster = make_cluster(pe_types=("FPGA",))
        assert not fits_on_processor(cluster, pe, make_clustering(cluster))


class TestPpeFit:
    def test_eruf_cap_enforced(self, arch, small_library):
        pe = arch.new_pe(small_library.pe_type("FPGA"))  # 200 PFUs -> 1400 usable gates
        policy = DelayPolicy()
        ok = make_cluster(gates=1400, pins=4)
        too_big = make_cluster(gates=1401, pins=4)
        assert fits_in_ppe_mode(ok, pe, 0, make_clustering(ok), policy)
        assert not fits_in_ppe_mode(too_big, pe, 0, make_clustering(too_big), policy)

    def test_epuf_cap_enforced(self, arch, small_library):
        pe = arch.new_pe(small_library.pe_type("FPGA"))  # 64 pins -> 51 usable
        policy = DelayPolicy()
        ok = make_cluster(gates=10, pins=51)
        too_many = make_cluster(gates=10, pins=52)
        assert fits_in_ppe_mode(ok, pe, 0, make_clustering(ok), policy)
        assert not fits_in_ppe_mode(too_many, pe, 0, make_clustering(too_many), policy)

    def test_existing_usage_counts(self, arch, small_library):
        pe = arch.new_pe(small_library.pe_type("FPGA"))
        resident = make_cluster(name="r", gates=1000, pins=4)
        clustering = make_clustering(resident)
        arch.allocate_cluster("r", pe.id, 0, gates=1000, pins=4)
        newcomer = make_cluster(name="n", gates=500, pins=4)
        clustering.clusters["n"] = newcomer
        assert not fits_in_ppe_mode(newcomer, pe, 0, clustering, DelayPolicy())

    def test_hypothetical_new_mode_uses_empty_usage(self, arch, small_library):
        pe = arch.new_pe(small_library.pe_type("FPGA"))
        resident = make_cluster(name="r", gates=1000, pins=4)
        clustering = make_clustering(resident)
        arch.allocate_cluster("r", pe.id, 0, gates=1000, pins=4)
        newcomer = make_cluster(name="n", gates=1400, pins=4)
        clustering.clusters["n"] = newcomer
        assert fits_in_ppe_mode(newcomer, pe, None, clustering, DelayPolicy())


class TestNewPeFit:
    def test_processor(self, small_library):
        cluster = make_cluster(memory=1 * MB)
        assert fits_new_pe_type(cluster, small_library.pe_type("CPU"), DelayPolicy())

    def test_ppe_capped(self, small_library):
        cluster = make_cluster(gates=1401, pins=4)
        assert not fits_new_pe_type(cluster, small_library.pe_type("FPGA"), DelayPolicy())

    def test_disallowed_type(self, small_library):
        cluster = make_cluster(pe_types=("CPU",))
        assert not fits_new_pe_type(cluster, small_library.pe_type("FPGA"), DelayPolicy())
