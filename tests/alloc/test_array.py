"""Allocation-array construction: option kinds, ordering, mode rules."""

import pytest

from repro import DelayPolicy, SystemSpec, Task, TaskGraph
from repro.arch.architecture import Architecture
from repro.cluster.clustering import cluster_spec
from repro.graph.task import MemoryRequirement
from repro.reconfig.compatibility import CompatibilityAnalysis
from repro.alloc.array import AllocationKind, build_allocation_array
from repro.alloc.evaluate import apply_option


def hw_graph(name, est=0.0, gates=800, period=1.0, deadline=0.5):
    g = TaskGraph(name=name, period=period, deadline=deadline, est=est)
    g.add_task(Task(name=name + ".t", exec_times={"FPGA": 1e-3},
                    area_gates=gates, pins=10))
    return g


def sw_graph(name):
    g = TaskGraph(name=name, period=1.0, deadline=0.5)
    g.add_task(Task(name=name + ".t", exec_times={"CPU": 1e-3},
                    memory=MemoryRequirement(program=2048)))
    return g


@pytest.fixture
def compat_pair(small_library):
    spec = SystemSpec(
        "s",
        [hw_graph("ga", est=0.0), hw_graph("gb", est=0.5)],
        compatibility=[("ga", "gb")],
    )
    clustering = cluster_spec(spec, small_library)
    compat = CompatibilityAnalysis.from_spec(spec)
    return spec, clustering, compat


def options_for(cluster_name, spec, clustering, compat, arch, **kw):
    return build_allocation_array(
        clustering.clusters[cluster_name], arch, clustering, spec,
        DelayPolicy(), compat=compat, **kw
    )


class TestOptionKinds:
    def test_empty_arch_offers_new_pes_only(self, small_library, compat_pair):
        spec, clustering, compat = compat_pair
        arch = Architecture(small_library)
        options = options_for("ga/c000", spec, clustering, compat, arch)
        assert options
        assert all(o.kind is AllocationKind.NEW_PE for o in options)

    def test_new_pe_cost_is_type_cost(self, small_library, compat_pair):
        spec, clustering, compat = compat_pair
        arch = Architecture(small_library)
        options = options_for("ga/c000", spec, clustering, compat, arch)
        fpga = [o for o in options if o.pe_type_name == "FPGA"][0]
        assert fpga.est_cost == 100.0

    def test_compatible_cluster_gets_new_mode_not_join(
        self, small_library, compat_pair
    ):
        spec, clustering, compat = compat_pair
        arch = Architecture(small_library)
        first = options_for("ga/c000", spec, clustering, compat, arch)[0]
        apply_option(first, arch, clustering.clusters["ga/c000"], clustering, spec)
        options = options_for("gb/c000", spec, clustering, compat, arch)
        kinds = {o.kind for o in options}
        assert AllocationKind.NEW_MODE in kinds
        # Joining the compatible resident's mode is not offered: the
        # new-mode option covers time sharing (Figure 4(d)).
        assert AllocationKind.EXISTING_MODE not in kinds
        # And the free new mode sorts before buying a new device.
        assert options[0].kind is AllocationKind.NEW_MODE

    def test_reconfiguration_disabled_blocks_new_modes(self, small_library):
        spec = SystemSpec(
            "s",
            [hw_graph("ga", est=0.0, gates=500), hw_graph("gb", est=0.5, gates=500)],
            compatibility=[("ga", "gb")],
        )
        clustering = cluster_spec(spec, small_library)
        arch = Architecture(small_library)
        compat = CompatibilityAnalysis.from_spec(spec)
        first = options_for("ga/c000", spec, clustering, compat, arch)[0]
        apply_option(first, arch, clustering.clusters["ga/c000"], clustering, spec)
        options = options_for(
            "gb/c000", spec, clustering, None, arch, allow_new_modes=False
        )
        kinds = {o.kind for o in options}
        assert AllocationKind.NEW_MODE not in kinds
        # Baseline: incompatible-or-unknown overlap means the silicon
        # is simply shared in mode 0.
        assert AllocationKind.EXISTING_MODE in kinds

    def test_overlapping_cluster_joins_mode(self, small_library):
        # Two overlapping graphs (no compatibility): the second shares
        # the same FPGA configuration (Figure 4(e)'s C3 case).
        spec = SystemSpec(
            "s",
            [hw_graph("ga", gates=500), hw_graph("gb", gates=500)],
            compatibility=[],
        )
        clustering = cluster_spec(spec, small_library)
        compat = CompatibilityAnalysis.from_spec(spec)
        arch = Architecture(small_library)
        first = options_for("ga/c000", spec, clustering, compat, arch)[0]
        apply_option(first, arch, clustering.clusters["ga/c000"], clustering, spec)
        options = options_for("gb/c000", spec, clustering, compat, arch)
        assert options[0].kind is AllocationKind.EXISTING_MODE


class TestReplication:
    def test_new_mode_replicates_overlapping_resident(self, small_library):
        # gb compatible with ga; gc overlaps ga but is compatible with
        # gb... construct: always-on graph plus two window graphs.
        always = hw_graph("always", period=0.5, deadline=0.25, gates=300)
        wa = hw_graph("wa", est=0.0, gates=600)
        wb = hw_graph("wb", est=0.5, gates=600)
        spec = SystemSpec(
            "s", [always, wa, wb], compatibility=[("wa", "wb")]
        )
        clustering = cluster_spec(spec, small_library)
        compat = CompatibilityAnalysis.from_spec(spec)
        arch = Architecture(small_library)
        # Place always + wa into mode 0 of one FPGA.
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        for name in ("always/c000", "wa/c000"):
            c = clustering.clusters[name]
            arch.allocate_cluster(name, fpga.id, 0, gates=c.area_gates, pins=c.pins)
        options = options_for("wb/c000", spec, clustering, compat, arch)
        new_modes = [o for o in options if o.kind is AllocationKind.NEW_MODE]
        assert new_modes
        # The always-on cluster must ride along into the new mode.
        assert new_modes[0].replicate == ("always/c000",)
        apply_option(new_modes[0], arch, clustering.clusters["wb/c000"],
                     clustering, spec)
        assert arch.pe(fpga.id).modes_of_cluster("always/c000") == (0, 1)

    def test_replication_respects_capacity(self, small_library):
        always = hw_graph("always", period=0.5, deadline=0.25, gates=900)
        wa = hw_graph("wa", est=0.0, gates=600)
        wb = hw_graph("wb", est=0.5, gates=600)  # 600 + 900 > 1400 cap
        spec = SystemSpec("s", [always, wa, wb], compatibility=[("wa", "wb")])
        clustering = cluster_spec(spec, small_library)
        compat = CompatibilityAnalysis.from_spec(spec)
        arch = Architecture(small_library)
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        for name in ("always/c000", "wa/c000"):
            c = clustering.clusters[name]
            arch.allocate_cluster(name, fpga.id, 0, gates=c.area_gates, pins=c.pins)
        options = options_for("wb/c000", spec, clustering, compat, arch)
        assert not [o for o in options if o.kind is AllocationKind.NEW_MODE]


class TestOrdering:
    def test_cheapest_first(self, small_library, compat_pair):
        spec, clustering, compat = compat_pair
        arch = Architecture(small_library)
        options = options_for("ga/c000", spec, clustering, compat, arch)
        costs = [o.est_cost for o in options]
        assert costs == sorted(costs)

    def test_describe_is_readable(self, small_library, compat_pair):
        spec, clustering, compat = compat_pair
        arch = Architecture(small_library)
        options = options_for("ga/c000", spec, clustering, compat, arch)
        assert "new FPGA" in options[0].describe()
