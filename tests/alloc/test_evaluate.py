"""apply_option / evaluate_architecture internals."""

import pytest

from repro import AllocationError, DelayPolicy, SystemSpec, Task, TaskGraph
from repro.arch.architecture import Architecture
from repro.cluster.clustering import cluster_spec
from repro.cluster.priority import PriorityContext
from repro.core.crusade import _compute_priorities
from repro.graph.association import AssociationArray
from repro.graph.task import MemoryRequirement
from repro.alloc.array import AllocationKind, AllocationOption, build_allocation_array
from repro.alloc.evaluate import (
    apply_option,
    choose_link_type,
    evaluate_architecture,
)


def two_cluster_spec():
    """A software producer feeding a hardware consumer: forces an
    inter-PE edge once allocated to CPU + FPGA."""
    g = TaskGraph(name="g", period=0.1, deadline=0.05)
    g.add_task(Task(name="sw", exec_times={"CPU": 1e-3},
                    memory=MemoryRequirement(program=2048)))
    g.add_task(Task(name="hw", exec_times={"FPGA": 1e-4},
                    area_gates=300, pins=8))
    g.add_edge("sw", "hw", bytes_=128)
    return SystemSpec("s", [g])


class TestChooseLinkType:
    def test_cheapest(self, library):
        link = choose_link_type(Architecture(library), "cheapest")
        costs = [l.instance_cost(2) for l in library.links_by_cost()]
        assert link.instance_cost(2) == min(costs)

    def test_fastest(self, library):
        link = choose_link_type(Architecture(library), "fastest")
        times = [l.comm_time(256) for l in library.links_by_cost()]
        assert link.comm_time(256) == min(times)

    def test_unknown_strategy(self, library):
        with pytest.raises(AllocationError):
            choose_link_type(Architecture(library), "psychic")


class TestApplyOption:
    def test_new_pe_and_link_created(self, small_library):
        spec = two_cluster_spec()
        clustering = cluster_spec(spec, small_library)
        arch = Architecture(small_library)
        by_types = {
            tuple(sorted(c.allowed_pe_types)): c
            for c in clustering.clusters.values()
        }
        sw_cluster = by_types[("CPU",)]
        hw_cluster = by_types[("FPGA",)]
        apply_option(
            AllocationOption(kind=AllocationKind.NEW_PE, est_cost=50.0,
                             preference=1.0, pe_type_name="CPU"),
            arch, sw_cluster, clustering, spec,
        )
        assert arch.n_pes == 1 and arch.n_links == 0
        apply_option(
            AllocationOption(kind=AllocationKind.NEW_PE, est_cost=100.0,
                             preference=1.0, pe_type_name="FPGA"),
            arch, hw_cluster, clustering, spec,
        )
        # Allocating the second endpoint wires the inter-PE edge.
        assert arch.n_pes == 2
        assert arch.n_links == 1
        cpu_id = arch.placement_of(sw_cluster.name)[0]
        fpga_id = arch.placement_of(hw_cluster.name)[0]
        assert arch.find_link_between(cpu_id, fpga_id) is not None

    def test_memory_accounted(self, small_library):
        spec = two_cluster_spec()
        clustering = cluster_spec(spec, small_library)
        arch = Architecture(small_library)
        sw_cluster = [
            c for c in clustering.clusters.values() if "CPU" in c.allowed_pe_types
        ][0]
        pe = apply_option(
            AllocationOption(kind=AllocationKind.NEW_PE, est_cost=50.0,
                             preference=1.0, pe_type_name="CPU"),
            arch, sw_cluster, clustering, spec,
        )
        assert pe.memory_demand.total == sw_cluster.memory.total


class TestEvaluateArchitecture:
    def build(self, small_library):
        spec = two_cluster_spec()
        clustering = cluster_spec(spec, small_library)
        arch = Architecture(small_library)
        for cluster in clustering.ordered_by_priority():
            options = build_allocation_array(
                cluster, arch, clustering, spec, DelayPolicy()
            )
            apply_option(options[0], arch, cluster, clustering, spec)
        assoc = AssociationArray(spec, max_explicit_copies=2)
        priorities = _compute_priorities(
            spec, PriorityContext.pessimistic(small_library)
        )
        return spec, assoc, clustering, arch, priorities

    def test_full_evaluation(self, small_library):
        spec, assoc, clustering, arch, priorities = self.build(small_library)
        verdict = evaluate_architecture(spec, assoc, clustering, arch, priorities)
        assert verdict.feasible
        assert verdict.cost == pytest.approx(arch.cost)
        assert verdict.badness() == (0, 0.0, verdict.cost)

    def test_scoped_evaluation_covers_subset(self, small_library):
        spec, assoc, clustering, arch, priorities = self.build(small_library)
        verdict = evaluate_architecture(
            spec, assoc, clustering, arch, priorities, graphs=["g"]
        )
        assert verdict.feasible
        scheduled_graphs = {k[0] for k in verdict.schedule.tasks}
        assert scheduled_graphs == {"g"}

    def test_scope_memoization(self, small_library):
        from repro.alloc.evaluate import _scope

        spec, assoc, *_ = self.build(small_library)
        a = _scope(spec, assoc, ["g"])
        b = _scope(spec, assoc, ["g"])
        assert a[0] is b[0]
