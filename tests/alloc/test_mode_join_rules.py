"""Mode-join legality on multi-mode devices (the physical rule)."""

import pytest

from repro import DelayPolicy, SystemSpec, Task, TaskGraph
from repro.arch.architecture import Architecture
from repro.cluster.clustering import cluster_spec
from repro.reconfig.compatibility import CompatibilityAnalysis
from repro.alloc.array import AllocationKind, build_allocation_array


def hw(name, est, period=1.0, window=0.5, gates=300):
    g = TaskGraph(name=name, period=period, deadline=window, est=est)
    g.add_task(Task(name=name + ".t", exec_times={"FPGA": 1e-3},
                    area_gates=gates, pins=4))
    return g


def test_join_requires_compatibility_with_other_modes(small_library):
    """A cluster may join mode M only when its graph is compatible
    with every graph in the device's OTHER modes -- else the device
    would need two configurations at once."""
    # Windows: wa [0, .33), wb [.33, .66), wc [0, .33) -- wc overlaps
    # wa but is compatible with wb.
    wa = hw("wa", est=0.0, window=1 / 3)
    wb = hw("wb", est=1 / 3, window=1 / 3)
    wc = hw("wc", est=0.0, window=1 / 3)
    spec = SystemSpec(
        "s", [wa, wb, wc],
        compatibility=[("wa", "wb"), ("wb", "wc")],
    )
    clustering = cluster_spec(spec, small_library)
    compat = CompatibilityAnalysis.from_spec(spec)
    arch = Architecture(small_library)
    fpga = arch.new_pe(small_library.pe_type("FPGA"))
    fpga.new_mode()
    ca, cb = clustering.cluster_of("wa", "wa.t"), clustering.cluster_of("wb", "wb.t")
    arch.allocate_cluster(ca.name, fpga.id, 0, gates=ca.area_gates, pins=ca.pins)
    arch.allocate_cluster(cb.name, fpga.id, 1, gates=cb.area_gates, pins=cb.pins)

    cc = clustering.cluster_of("wc", "wc.t")
    options = build_allocation_array(
        cc, arch, clustering, spec, DelayPolicy(), compat=compat
    )
    joins = [o for o in options if o.kind is AllocationKind.EXISTING_MODE]
    # wc may join wa's mode 0 (compatible with wb in mode 1) but never
    # wb's mode 1 (incompatible with wa in mode 0).
    assert joins, "expected a legal join"
    assert all(o.mode_index == 0 for o in joins)
    # And no new mode: wc overlaps wa, so a fresh configuration would
    # need wa's circuit replicated -- offered only if capacity admits.
    new_modes = [o for o in options if o.kind is AllocationKind.NEW_MODE]
    for option in new_modes:
        assert ca.name in option.replicate
