"""Full-pipeline integration: example -> JSON -> synthesis -> export
-> validation, exactly as a downstream user would wire the library."""

import json

import pytest

from repro import (
    CrusadeConfig,
    crusade,
    load_spec_file,
    save_result_file,
    save_spec_file,
    validate_architecture,
    validate_schedule,
)
from repro.analysis.compare import compare_results
from repro.bench.examples import build_example
from repro.graph.association import AssociationArray


@pytest.mark.slow
def test_pipeline_end_to_end(tmp_path):
    # 1. Build a scaled paper example and archive it as JSON.
    spec = build_example("A1TR", scale=0.04)
    spec_path = tmp_path / "a1tr.json"
    save_spec_file(spec, spec_path)

    # 2. Reload and synthesize both ways.
    loaded = load_spec_file(spec_path)
    config = CrusadeConfig(max_explicit_copies=2)
    baseline = crusade(loaded, config=CrusadeConfig(
        reconfiguration=False, max_explicit_copies=2))
    reconfig = crusade(loaded, config=config, baseline=baseline)
    assert baseline.feasible and reconfig.feasible

    # 3. The comparative claim of the paper holds.
    diff = compare_results(baseline, reconfig)
    assert diff.savings >= 0

    # 4. Both results pass the independent validators.
    assoc = AssociationArray(loaded, max_explicit_copies=2)
    for result in (baseline, reconfig):
        sched_report = validate_schedule(
            result.schedule, loaded, assoc, result.clustering, result.arch
        )
        assert sched_report.ok, sched_report.violations[:3]
        arch_report = validate_architecture(
            result.arch, result.clustering, spec=loaded,
            policy=config.delay_policy,
        )
        assert arch_report.ok, arch_report.violations[:3]

    # 5. Results export as JSON a dashboard could consume.
    out_path = tmp_path / "result.json"
    save_result_file(reconfig, out_path)
    payload = json.loads(out_path.read_text())
    assert payload["feasible"] is True
    assert payload["architecture"]["cost_breakdown"]["total"] == pytest.approx(
        reconfig.cost
    )
