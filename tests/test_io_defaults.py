"""Spec JSON: hand-authored minimal documents with defaulted fields."""

import pytest

from repro import validate_spec
from repro.io.spec_json import load_spec

MINIMAL = """
{
  "format": "crusade-spec",
  "version": 1,
  "name": "hand",
  "graphs": [
    {
      "name": "g",
      "period": 0.01,
      "tasks": [
        {"name": "a", "exec_times": {"MC68360": 0.0004}},
        {"name": "b", "exec_times": {"MC68360": 0.0002}}
      ],
      "edges": [{"src": "a", "dst": "b", "bytes": 64}]
    }
  ]
}
"""


class TestMinimalDocument:
    def test_loads_with_defaults(self, library):
        spec = load_spec(MINIMAL)
        assert spec.name == "hand"
        graph = spec.graph("g")
        assert graph.deadline == graph.period  # defaulted
        assert graph.est == 0.0
        task = graph.task("a")
        assert task.memory.total == 0
        assert task.area_gates == 0
        assert task.assertions == ()
        assert not task.error_transparent
        assert spec.boot_time_requirement == 0.2
        assert not spec.has_explicit_compatibility
        validate_spec(spec, library)

    def test_edge_bytes_default_zero(self):
        doc = MINIMAL.replace(', "bytes": 64', "")
        spec = load_spec(doc)
        assert spec.graph("g").edge("a", "b").bytes_ == 0

    def test_synthesizable(self, library):
        from repro import CrusadeConfig, crusade

        spec = load_spec(MINIMAL)
        result = crusade(spec, library=library,
                         config=CrusadeConfig(max_explicit_copies=2))
        assert result.feasible
