"""Table renderer edge cases."""

from repro.bench.runner import pct, render_table


class TestRenderTable:
    def test_empty_rows(self):
        text = render_table("T", ["a"], [])
        assert "T" in text
        assert "a" in text

    def test_wide_cells_stretch_columns(self):
        text = render_table("T", ["x"], [["a-very-long-cell-value"]])
        header_line = text.splitlines()[2]
        assert len(header_line) >= len("a-very-long-cell-value")

    def test_right_alignment_of_body(self):
        text = render_table("T", ["num"], [[7]])
        body = text.splitlines()[4]
        assert body.endswith("7")

    def test_mixed_types(self):
        text = render_table("T", ["a", "b"], [[1, "x"], [2.5, None]])
        assert "2.5" in text and "None" in text


class TestPct:
    def test_rounding(self):
        assert pct(56.74) == "56.7"
        assert pct(0) == "0.0"
        assert pct(-3.25) in ("-3.2", "-3.3")  # platform rounding
