"""SystemSpec semantics and specification validation."""

import pytest

from repro import SpecificationError, SystemSpec, Task, TaskGraph
from repro.graph.validate import validate_graph, validate_spec


def graph(name, period=1.0, est=0.0, pe="MC68360"):
    g = TaskGraph(name=name, period=period, est=est)
    g.add_task(Task(name=name + ".t", exec_times={pe: 1e-3}))
    return g


class TestSystemSpec:
    def test_basic(self):
        spec = SystemSpec("s", [graph("a"), graph("b")])
        assert spec.graph_names() == ["a", "b"]
        assert spec.total_tasks == 2

    def test_duplicate_graph_rejected(self):
        with pytest.raises(SpecificationError):
            SystemSpec("s", [graph("a"), graph("a")])

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            SystemSpec("s", [])

    def test_unknown_graph_lookup(self):
        spec = SystemSpec("s", [graph("a")])
        with pytest.raises(SpecificationError):
            spec.graph("zz")

    def test_boot_time_requirement_positive(self):
        with pytest.raises(SpecificationError):
            SystemSpec("s", [graph("a")], boot_time_requirement=0.0)


class TestCompatibility:
    def test_none_means_auto_detect(self):
        spec = SystemSpec("s", [graph("a"), graph("b")])
        assert not spec.has_explicit_compatibility
        assert spec.compatible("a", "b") is None

    def test_explicit_pairs(self):
        spec = SystemSpec(
            "s", [graph("a"), graph("b"), graph("c")], compatibility=[("a", "b")]
        )
        assert spec.compatible("a", "b") is True
        assert spec.compatible("b", "a") is True
        assert spec.compatible("a", "c") is False

    def test_self_compatibility_always_false(self):
        spec = SystemSpec("s", [graph("a"), graph("b")], compatibility=[("a", "b")])
        assert spec.compatible("a", "a") is False

    def test_self_pair_rejected(self):
        with pytest.raises(SpecificationError):
            SystemSpec("s", [graph("a")], compatibility=[("a", "a")])

    def test_unknown_graph_in_pair_rejected(self):
        with pytest.raises(SpecificationError):
            SystemSpec("s", [graph("a")], compatibility=[("a", "zz")])

    def test_compatibility_vector_delta_encoding(self):
        spec = SystemSpec(
            "s", [graph("a"), graph("b"), graph("c")], compatibility=[("a", "b")]
        )
        # Delta: 0 = compatible, 1 = incompatible (paper Section 4.1).
        assert spec.compatibility_vector("a") == {"b": 0, "c": 1}

    def test_vector_requires_explicit(self):
        spec = SystemSpec("s", [graph("a"), graph("b")])
        with pytest.raises(SpecificationError):
            spec.compatibility_vector("a")


class TestUnavailability:
    def test_recorded(self):
        spec = SystemSpec("s", [graph("a")], unavailability={"a": 12.0})
        assert spec.unavailability["a"] == 12.0

    def test_unknown_graph_rejected(self):
        with pytest.raises(SpecificationError):
            SystemSpec("s", [graph("a")], unavailability={"zz": 4.0})

    def test_negative_rejected(self):
        with pytest.raises(SpecificationError):
            SystemSpec("s", [graph("a")], unavailability={"a": -1.0})


class TestValidation:
    def test_valid_graph_passes(self, library):
        warnings = validate_graph(graph("a"), library)
        assert warnings == []

    def test_cycle_detected(self):
        g = TaskGraph(name="g", period=1.0)
        g.add_task(Task(name="a", exec_times={"X": 1e-3}))
        g.add_task(Task(name="b", exec_times={"X": 1e-3}))
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(SpecificationError):
            validate_graph(g)

    def test_empty_graph_rejected(self):
        with pytest.raises(SpecificationError):
            validate_graph(TaskGraph(name="g", period=1.0))

    def test_unknown_pe_type_rejected(self, library):
        g = TaskGraph(name="g", period=1.0)
        g.add_task(Task(name="a", exec_times={"NOPE": 1e-3}))
        with pytest.raises(SpecificationError):
            validate_graph(g, library)

    def test_deadline_beyond_period_warns(self, library):
        g = TaskGraph(name="g", period=1.0, deadline=1.5)
        g.add_task(Task(name="a", exec_times={"MC68360": 1e-3}))
        warnings = validate_graph(g, library)
        assert any("deadline" in w for w in warnings)

    def test_cross_graph_exclusion_must_exist(self, library):
        g = TaskGraph(name="g", period=1.0)
        g.add_task(
            Task(name="a", exec_times={"MC68360": 1e-3}, exclusions=frozenset({"ghost"}))
        )
        spec = SystemSpec("s", [g])
        with pytest.raises(SpecificationError):
            validate_spec(spec, library)

    def test_cross_graph_exclusion_ok_when_exists(self, library):
        g1 = TaskGraph(name="g1", period=1.0)
        g1.add_task(
            Task(name="a", exec_times={"MC68360": 1e-3}, exclusions=frozenset({"g2.t"}))
        )
        g2 = graph("g2")
        spec = SystemSpec("s", [g1, g2])
        validate_spec(spec, library)  # no raise
