"""Synthetic workload generator: determinism, structure, compatibility."""

import random

import pytest

from repro import GeneratorConfig, SpecificationError, generate_spec, validate_spec
from repro.graph.generator import generate_graph
from repro.resources.catalog import default_library


def small_config(**overrides):
    fields = dict(seed=5, n_graphs=4, tasks_per_graph=8, compat_group_size=2)
    fields.update(overrides)
    return GeneratorConfig(**fields)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(n_graphs=0),
        dict(tasks_per_graph=0),
        dict(total_tasks=1, n_graphs=2),
        dict(periods=()),
        dict(deadline_slack=0.0),
        dict(hw_only_fraction=0.7, mixed_fraction=0.5),
        dict(compat_group_size=0),
        dict(utilization=0.0),
    ])
    def test_rejects(self, kwargs):
        with pytest.raises(SpecificationError):
            small_config(**kwargs)


class TestDeterminism:
    def test_same_seed_same_spec(self):
        a = generate_spec(small_config())
        b = generate_spec(small_config())
        assert a.graph_names() == b.graph_names()
        for name in a.graph_names():
            ga, gb = a.graph(name), b.graph(name)
            assert ga.period == gb.period
            assert list(ga.tasks) == list(gb.tasks)
            assert list(ga.edges) == list(gb.edges)
            for t in ga.tasks:
                assert ga.task(t).exec_times == gb.task(t).exec_times

    def test_different_seed_differs(self):
        a = generate_spec(small_config(seed=5))
        b = generate_spec(small_config(seed=6))
        periods_a = [a.graph(n).period for n in a.graph_names()]
        periods_b = [b.graph(n).period for n in b.graph_names()]
        tasks_a = {t for n in a.graph_names() for t in a.graph(n).tasks}
        tasks_b = {t for n in b.graph_names() for t in b.graph(n).tasks}
        assert periods_a != periods_b or tasks_a != tasks_b


class TestStructure:
    def test_validates_against_default_library(self):
        spec = generate_spec(small_config())
        validate_spec(spec, default_library())

    def test_total_tasks_exact(self):
        spec = generate_spec(small_config(total_tasks=37))
        assert spec.total_tasks == 37

    def test_n_graphs(self):
        spec = generate_spec(small_config(n_graphs=5))
        assert len(spec.graphs) == 5

    def test_graphs_are_connected_dags(self):
        spec = generate_spec(small_config(tasks_per_graph=15))
        for name in spec.graph_names():
            g = spec.graph(name)
            assert g.is_acyclic()
            non_sources = [t for t in g.tasks if g.predecessors(t)]
            sources = g.sources()
            assert len(sources) >= 1
            assert len(non_sources) + len(sources) == len(g)

    def test_compat_groups_declared(self):
        spec = generate_spec(small_config(n_graphs=4, compat_group_size=2))
        names = spec.graph_names()
        assert spec.has_explicit_compatibility
        # Groups of two: (g00, g01) and (g02, g03).
        assert spec.compatible(names[0], names[1]) is True
        assert spec.compatible(names[0], names[2]) is False

    def test_group_members_have_disjoint_windows(self):
        spec = generate_spec(small_config(n_graphs=2, compat_group_size=2))
        a, b = [spec.graph(n) for n in spec.graph_names()]
        assert a.period == b.period
        # Staggered ESTs, window-sized deadlines.
        first, second = sorted((a, b), key=lambda g: g.est)
        assert first.est + first.deadline <= second.est + 1e-9
        assert second.est + second.deadline <= first.period + 1e-9

    def test_group_size_one_declares_everything_incompatible(self):
        # The generator knows the windows overlap, so it relays an
        # explicit all-incompatible vector rather than leaving the
        # co-synthesis system to detect it.
        spec = generate_spec(small_config(compat_group_size=1))
        assert spec.has_explicit_compatibility
        names = spec.graph_names()
        assert spec.compatible(names[0], names[1]) is False

    def test_compat_groups_use_slow_periods(self):
        config = small_config(n_graphs=2, compat_group_size=2)
        spec = generate_spec(config)
        for name in spec.graph_names():
            assert spec.graph(name).period in config.compat_periods

    def test_hw_only_tasks_have_area_no_memory(self):
        spec = generate_spec(small_config(tasks_per_graph=30, hw_only_fraction=0.6))
        hw_only = [
            t
            for n in spec.graph_names()
            for t in spec.graph(n).tasks.values()
            if t.hardware_only
        ]
        assert hw_only, "expected some hardware-only tasks"
        for task in hw_only:
            assert task.area_gates > 0
            assert task.memory.total == 0

    def test_unavailability_assigned_to_every_graph(self):
        spec = generate_spec(small_config())
        assert set(spec.unavailability) == set(spec.graph_names())


class TestGenerateGraph:
    def test_window_fraction_shrinks_deadline(self):
        lib = default_library()
        rng = random.Random(0)
        config = small_config()
        g = generate_graph("w", 6, 1.0, config, rng, lib, window_fraction=0.25)
        assert g.deadline == pytest.approx(0.25 * config.deadline_slack)

    def test_est_passed_through(self):
        lib = default_library()
        g = generate_graph("e", 4, 1.0, small_config(), random.Random(0), lib, est=0.4)
        assert g.est == 0.4
