"""Property test: arbitrary generated specifications JSON-round-trip."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import GeneratorConfig, generate_spec
from repro.io.spec_json import spec_from_dict, spec_to_dict


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    n_graphs=st.integers(min_value=1, max_value=5),
    tasks=st.integers(min_value=1, max_value=12),
    group=st.integers(min_value=1, max_value=3),
)
def test_generated_specs_roundtrip(seed, n_graphs, tasks, group):
    spec = generate_spec(GeneratorConfig(
        seed=seed, n_graphs=n_graphs, tasks_per_graph=tasks,
        compat_group_size=group,
    ))
    clone = spec_from_dict(spec_to_dict(spec))
    assert clone.graph_names() == spec.graph_names()
    assert clone.total_tasks == spec.total_tasks
    # Structure and rates match graph by graph, task by task.
    for name in spec.graph_names():
        original, loaded = spec.graph(name), clone.graph(name)
        assert loaded.period == original.period
        assert loaded.deadline == original.deadline
        assert loaded.topological_order() == original.topological_order()
        for key, edge in original.edges.items():
            assert loaded.edge(*key).bytes_ == edge.bytes_
        for task_name, task in original.tasks.items():
            twin = loaded.task(task_name)
            assert dict(twin.exec_times) == dict(task.exec_times)
            assert twin.area_gates == task.area_gates
            assert twin.pins == task.pins
    # Round-tripping twice is a fixed point.
    assert spec_to_dict(clone) == spec_to_dict(spec)
