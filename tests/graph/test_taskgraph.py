"""TaskGraph structure, traversal, and deadline semantics."""

import pytest

from repro import SpecificationError, Task, TaskGraph
from repro.graph.edge import Edge


def simple_task(name, deadline=None):
    return Task(name=name, exec_times={"CPU": 1e-3}, deadline=deadline)


def diamond():
    g = TaskGraph(name="d", period=0.01)
    for n in ("a", "b", "c", "d"):
        g.add_task(simple_task(n))
    g.add_edge("a", "b", bytes_=10)
    g.add_edge("a", "c", bytes_=10)
    g.add_edge("b", "d", bytes_=10)
    g.add_edge("c", "d", bytes_=10)
    return g


class TestConstruction:
    def test_defaults(self):
        g = TaskGraph(name="g", period=0.5)
        assert g.deadline == 0.5  # defaults to the period
        assert g.est == 0.0

    @pytest.mark.parametrize("kwargs", [
        dict(name="", period=1.0),
        dict(name="g", period=0.0),
        dict(name="g", period=1.0, deadline=0.0),
        dict(name="g", period=1.0, est=-1.0),
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(SpecificationError):
            TaskGraph(**kwargs)

    def test_duplicate_task_rejected(self):
        g = TaskGraph(name="g", period=1.0)
        g.add_task(simple_task("a"))
        with pytest.raises(SpecificationError):
            g.add_task(simple_task("a"))

    def test_edge_endpoints_must_exist(self):
        g = TaskGraph(name="g", period=1.0)
        g.add_task(simple_task("a"))
        with pytest.raises(SpecificationError):
            g.add_edge("a", "missing")

    def test_duplicate_edge_rejected(self):
        g = diamond()
        with pytest.raises(SpecificationError):
            g.add_edge("a", "b")

    def test_self_loop_rejected(self):
        with pytest.raises(SpecificationError):
            Edge(src="a", dst="a")

    def test_negative_bytes_rejected(self):
        with pytest.raises(SpecificationError):
            Edge(src="a", dst="b", bytes_=-1)


class TestTraversal:
    def test_sources_and_sinks(self):
        g = diamond()
        assert g.sources() == ["a"]
        assert g.sinks() == ["d"]

    def test_topological_order_is_valid_and_deterministic(self):
        g = diamond()
        order = g.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")
        assert order == g.topological_order()

    def test_predecessors_successors(self):
        g = diamond()
        assert g.predecessors("d") == ["b", "c"]
        assert g.successors("a") == ["b", "c"]

    def test_acyclicity(self):
        g = diamond()
        assert g.is_acyclic()

    def test_contains_and_len(self):
        g = diamond()
        assert "a" in g
        assert "z" not in g
        assert len(g) == 4

    def test_unknown_lookups_raise(self):
        g = diamond()
        with pytest.raises(SpecificationError):
            g.task("zz")
        with pytest.raises(SpecificationError):
            g.edge("a", "d")


class TestDeadlines:
    def test_sink_inherits_graph_deadline(self):
        g = diamond()
        assert g.effective_deadline("d") == g.deadline

    def test_non_sink_has_no_deadline_by_default(self):
        g = diamond()
        assert g.effective_deadline("b") is None

    def test_task_deadline_wins(self):
        g = TaskGraph(name="g", period=1.0, deadline=0.9)
        g.add_task(simple_task("a", deadline=0.3))
        g.add_task(simple_task("b"))
        g.add_edge("a", "b")
        assert g.effective_deadline("a") == 0.3
        assert g.effective_deadline("b") == 0.9

    def test_deadline_tasks(self):
        g = diamond()
        assert g.deadline_tasks() == ["d"]


class TestHelpers:
    def test_total_area(self):
        g = TaskGraph(name="g", period=1.0)
        g.add_task(Task(name="x", exec_times={"F": 1e-4}, area_gates=100))
        g.add_task(Task(name="y", exec_times={"F": 1e-4}, area_gates=200))
        assert g.total_area_gates() == 300

    def test_iter_edges_sorted(self):
        g = diamond()
        keys = [e.key for e in g.iter_edges()]
        assert keys == sorted(keys)

    def test_replace_task(self):
        g = diamond()
        g.replace_task(Task(name="a", exec_times={"CPU": 5e-3}))
        assert g.task("a").wcet_on("CPU") == 5e-3
        with pytest.raises(SpecificationError):
            g.replace_task(simple_task("nope"))
