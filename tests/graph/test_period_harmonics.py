"""Period harmonics: hyperperiods stay bounded by construction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import GeneratorConfig, generate_spec, hyperperiod_of
from repro.graph.association import AssociationArray


class TestDefaultPeriodSets:
    def test_fast_periods_are_harmonic(self):
        config = GeneratorConfig()
        base = config.periods[0]
        for period in config.periods:
            ratio = period / base
            assert abs(ratio - round(ratio)) < 1e-9

    def test_compat_periods_extend_the_same_family(self):
        config = GeneratorConfig()
        base = config.periods[0]
        for period in config.compat_periods:
            ratio = period / base
            assert abs(ratio - round(ratio)) < 1e-6

    def test_hyperperiod_equals_longest_period(self):
        # With one harmonic family, the hyperperiod is just the
        # largest period present -- the generator's key property.
        config = GeneratorConfig(seed=1, n_graphs=6, compat_group_size=2)
        spec = generate_spec(config)
        periods = [spec.graph(n).period for n in spec.graph_names()]
        assert hyperperiod_of(spec) == pytest.approx(max(periods))


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_graphs=st.integers(min_value=1, max_value=8),
    group=st.integers(min_value=1, max_value=4),
)
def test_association_compression_is_bounded(seed, n_graphs, group):
    """However the generator mixes rates, the explicit copy count the
    scheduler sees stays small even when the hyperperiod holds
    thousands of copies."""
    spec = generate_spec(GeneratorConfig(
        seed=seed, n_graphs=n_graphs, tasks_per_graph=3,
        compat_group_size=group,
    ))
    assoc = AssociationArray(spec, max_explicit_copies=4)
    assert assoc.total_explicit() <= 4 * len(spec.graphs)
    for name in spec.graph_names():
        assert assoc.n_explicit(name) >= 1
        assert assoc.n_copies(name) >= assoc.n_explicit(name)
