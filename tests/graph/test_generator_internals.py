"""Generator internals: sizing, layering, byte caps."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import GeneratorConfig
from repro.graph.generator import _graph_sizes, _layering


class TestGraphSizes:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_graphs=st.integers(min_value=1, max_value=12),
        total=st.integers(min_value=12, max_value=400),
    )
    def test_total_tasks_hit_exactly(self, seed, n_graphs, total):
        config = GeneratorConfig(
            seed=seed, n_graphs=n_graphs, tasks_per_graph=10, total_tasks=total
        )
        sizes = _graph_sizes(config, random.Random(seed))
        assert sum(sizes) == total
        assert len(sizes) == n_graphs
        assert all(s >= 1 for s in sizes)

    def test_without_total_sizes_jitter_around_mean(self):
        config = GeneratorConfig(seed=4, n_graphs=50, tasks_per_graph=20)
        sizes = _graph_sizes(config, random.Random(4))
        assert all(10 <= s <= 30 for s in sizes)
        mean = sum(sizes) / len(sizes)
        assert 16 <= mean <= 24


class TestLayering:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_layers_partition_tasks(self, n, seed):
        config = GeneratorConfig(seed=seed)
        layers = _layering(n, config, random.Random(seed))
        assert sum(layers) == n
        assert all(width >= 1 for width in layers)


class TestByteCaps:
    def test_fast_periods_get_small_payloads(self, library):
        from repro.graph.generator import generate_graph

        config = GeneratorConfig(seed=3)
        fast = generate_graph(
            "fast", 20, 400e-6, config, random.Random(3), library
        )
        slow = generate_graph(
            "slow", 20, 1.6384, config, random.Random(3), library
        )
        fast_max = max(e.bytes_ for e in fast.iter_edges())
        slow_max = max(e.bytes_ for e in slow.iter_edges())
        assert fast_max <= 32
        assert slow_max > 256
