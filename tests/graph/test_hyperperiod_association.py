"""Hyperperiod computation and the association array."""

import pytest
from hypothesis import given, strategies as st

from repro import SpecificationError, SystemSpec, Task, TaskGraph, hyperperiod_of
from repro.graph.association import AssociationArray
from repro.graph.hyperperiod import copies_in_hyperperiod
from repro.units import US


def graph(name, period, est=0.0):
    g = TaskGraph(name=name, period=period, est=est)
    g.add_task(Task(name=name + ".t", exec_times={"CPU": 1e-4}))
    return g


class TestHyperperiod:
    def test_of_period_list(self):
        assert hyperperiod_of([0.002, 0.003]) == pytest.approx(0.006)

    def test_of_spec(self):
        spec = SystemSpec("s", [graph("a", 0.004), graph("b", 0.006)])
        assert hyperperiod_of(spec) == pytest.approx(0.012)

    def test_identical_periods(self):
        assert hyperperiod_of([0.005, 0.005]) == pytest.approx(0.005)

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            hyperperiod_of([])

    def test_copies_in_hyperperiod(self):
        assert copies_in_hyperperiod(0.002, 0.012) == 6
        assert copies_in_hyperperiod(0.012, 0.012) == 1

    def test_copies_requires_divisibility(self):
        with pytest.raises(SpecificationError):
            copies_in_hyperperiod(0.005, 0.012)

    @given(st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=4))
    def test_hyperperiod_is_multiple_of_each_period(self, multipliers):
        periods = [m * 100 * US for m in multipliers]
        h = hyperperiod_of(periods)
        for p in periods:
            ratio = h / p
            assert abs(ratio - round(ratio)) < 1e-6


class TestAssociationArray:
    def make_spec(self):
        return SystemSpec("s", [graph("fast", 0.001), graph("slow", 0.008)])

    def test_copy_counts(self):
        assoc = AssociationArray(self.make_spec(), max_explicit_copies=None)
        assert assoc.n_copies("fast") == 8
        assert assoc.n_copies("slow") == 1
        assert assoc.total_copies() == 9

    def test_explicit_cap(self):
        assoc = AssociationArray(self.make_spec(), max_explicit_copies=3)
        assert assoc.n_explicit("fast") == 3
        assert assoc.n_explicit("slow") == 1
        assert len(assoc.associated_copies("fast")) == 5

    def test_arrivals_and_deadlines(self):
        assoc = AssociationArray(self.make_spec(), max_explicit_copies=None)
        copies = assoc.copies("fast")
        for k, copy in enumerate(copies):
            assert copy.arrival == pytest.approx(k * 0.001)
            assert copy.deadline == pytest.approx(k * 0.001 + 0.001)

    def test_est_offsets_arrivals(self):
        spec = SystemSpec("s", [graph("a", 0.004, est=0.001)])
        assoc = AssociationArray(spec)
        assert assoc.copies("a")[0].arrival == pytest.approx(0.001)

    def test_representative_and_shift(self):
        assoc = AssociationArray(self.make_spec(), max_explicit_copies=2)
        associated = assoc.associated_copies("fast")[0]  # copy 2
        rep = assoc.representative_of(associated)
        assert rep.explicit
        assert rep.copy == associated.copy % 2
        shift = assoc.shift_of(associated)
        assert shift == pytest.approx(associated.arrival - rep.arrival)

    def test_explicit_copy_is_its_own_representative(self):
        assoc = AssociationArray(self.make_spec(), max_explicit_copies=2)
        first = assoc.explicit_copies("fast")[0]
        assert assoc.representative_of(first) is first
        assert assoc.shift_of(first) == 0.0

    def test_compression_ratio(self):
        assoc = AssociationArray(self.make_spec(), max_explicit_copies=1)
        assert assoc.compression_ratio() == pytest.approx(9 / 2)

    def test_iteration_order_deterministic(self):
        assoc = AssociationArray(self.make_spec(), max_explicit_copies=2)
        keys = [c.key for c in assoc.iter_all()]
        assert keys == sorted(keys)

    def test_rejects_zero_cap(self):
        with pytest.raises(SpecificationError):
            AssociationArray(self.make_spec(), max_explicit_copies=0)

    def test_unknown_graph(self):
        assoc = AssociationArray(self.make_spec())
        with pytest.raises(SpecificationError):
            assoc.copies("zz")
