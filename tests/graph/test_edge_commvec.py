"""Communication-vector semantics across the link library.

Section 2.2: the communication vector of an edge is its transfer time
on every link type, computed a priori with an assumed port count and
recomputed after allocation with the actual one.  The vector lives on
the link types; these tests pin the contract the scheduler relies on.
"""

import pytest

from repro import default_library
from repro.graph.edge import Edge


@pytest.fixture(scope="module")
def links():
    return {l.name: l for l in default_library().links_by_cost()}


class TestCommunicationVector:
    def test_vector_over_all_links(self, links):
        edge = Edge(src="a", dst="b", bytes_=512)
        vector = {name: link.comm_time(edge.bytes_) for name, link in links.items()}
        assert set(vector) == {"bus680X0", "busQUICC", "lan10", "serial31"}
        assert all(v > 0 for v in vector.values())

    def test_buses_beat_lan_for_small_messages(self, links):
        # A 64-byte message: one bus packet versus a LAN frame.
        assert links["bus680X0"].comm_time(64) < links["lan10"].comm_time(64)

    def test_lan_trades_speed_for_reach(self, links):
        # A parallel backplane bus outruns the 10 Mb/s LAN per byte,
        # but the LAN connects four times as many PEs -- the trade the
        # link library exists to expose.
        bulk = 64 * 1024
        assert links["bus680X0"].comm_time(bulk) < links["lan10"].comm_time(bulk)
        assert links["lan10"].max_ports > links["bus680X0"].max_ports

    def test_recomputation_with_actual_ports(self, links):
        bus = links["bus680X0"]
        before = bus.comm_time(256)          # assumed ports (4)
        after = bus.comm_time(256, ports=8)  # fully loaded bus
        lighter = bus.comm_time(256, ports=2)
        assert lighter <= before <= after

    def test_serial_link_is_point_to_point(self, links):
        serial = links["serial31"]
        assert serial.max_ports == 2
        # Port count beyond 2 clamps: the access time cannot grow.
        assert serial.comm_time(256, ports=2) == serial.comm_time(256, ports=5)
