"""Task model: execution/preference/exclusion/memory vectors."""

import pytest
from hypothesis import given, strategies as st

from repro import SpecificationError, Task
from repro.graph.task import AssertionSpec, MemoryRequirement


def make_task(**overrides):
    fields = dict(name="t", exec_times={"CPU": 1e-3, "FPGA": 1e-4})
    fields.update(overrides)
    return Task(**fields)


class TestMemoryRequirement:
    def test_total(self):
        mem = MemoryRequirement(program=100, data=50, stack=25)
        assert mem.total == 175

    def test_addition(self):
        a = MemoryRequirement(1, 2, 3)
        b = MemoryRequirement(10, 20, 30)
        assert (a + b) == MemoryRequirement(11, 22, 33)

    def test_rejects_negative(self):
        with pytest.raises(SpecificationError):
            MemoryRequirement(program=-1)

    def test_default_is_empty(self):
        assert MemoryRequirement().total == 0


class TestAssertionSpec:
    def test_valid(self):
        spec = AssertionSpec(name="parity", coverage=0.9)
        assert spec.coverage == 0.9

    @pytest.mark.parametrize("coverage", [0.0, -0.1, 1.5])
    def test_rejects_bad_coverage(self, coverage):
        with pytest.raises(SpecificationError):
            AssertionSpec(name="x", coverage=coverage)

    def test_rejects_negative_bytes(self):
        with pytest.raises(SpecificationError):
            AssertionSpec(name="x", coverage=0.5, comm_bytes=-1)


class TestTaskValidation:
    def test_requires_name(self):
        with pytest.raises(SpecificationError):
            make_task(name="")

    def test_requires_exec_times(self):
        with pytest.raises(SpecificationError):
            make_task(exec_times={})

    def test_rejects_non_positive_wcet(self):
        with pytest.raises(SpecificationError):
            make_task(exec_times={"CPU": 0.0})

    def test_rejects_bad_preference(self):
        with pytest.raises(SpecificationError):
            make_task(preference={"CPU": 1.5})

    def test_rejects_negative_area(self):
        with pytest.raises(SpecificationError):
            make_task(area_gates=-5)

    def test_rejects_self_exclusion(self):
        with pytest.raises(SpecificationError):
            make_task(exclusions=frozenset({"t"}))

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(SpecificationError):
            make_task(deadline=0.0)


class TestTaskMapping:
    def test_can_run_on_listed_pe(self):
        task = make_task()
        assert task.can_run_on("CPU")
        assert task.can_run_on("FPGA")
        assert not task.can_run_on("ASIC01")

    def test_none_wcet_forbids(self):
        task = make_task(exec_times={"CPU": 1e-3, "FPGA": None})
        assert not task.can_run_on("FPGA")

    def test_zero_preference_forbids(self):
        task = make_task(preference={"FPGA": 0.0})
        assert not task.can_run_on("FPGA")
        assert task.can_run_on("CPU")

    def test_wcet_on(self):
        task = make_task()
        assert task.wcet_on("CPU") == 1e-3

    def test_wcet_on_forbidden_raises(self):
        task = make_task(preference={"FPGA": 0.0})
        with pytest.raises(SpecificationError):
            task.wcet_on("FPGA")

    def test_max_and_min_exec_time(self):
        task = make_task()
        assert task.max_exec_time == 1e-3
        assert task.min_exec_time == 1e-4

    def test_extrema_skip_forbidden(self):
        task = make_task(preference={"CPU": 0.0})
        assert task.max_exec_time == 1e-4
        assert task.min_exec_time == 1e-4

    def test_allowed_pe_types_sorted_by_preference(self):
        task = make_task(preference={"CPU": 0.5, "FPGA": 0.9})
        assert task.allowed_pe_types() == ("FPGA", "CPU")

    def test_hardware_only_heuristic(self):
        hw = make_task(exec_times={"FPGA": 1e-4}, area_gates=500)
        assert hw.hardware_only
        sw = make_task(memory=MemoryRequirement(program=1024))
        assert not sw.hardware_only


@given(
    st.dictionaries(
        st.sampled_from(["CPU", "FPGA", "ASIC01", "DSP"]),
        st.floats(min_value=1e-9, max_value=10.0),
        min_size=1,
    )
)
def test_extrema_bound_every_allowed_wcet(exec_times):
    task = Task(name="t", exec_times=exec_times)
    for pe in exec_times:
        assert task.min_exec_time <= task.wcet_on(pe) <= task.max_exec_time
