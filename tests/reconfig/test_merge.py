"""The Figure 3 merge procedure."""

import pytest

from repro import AllocationError, DelayPolicy, SystemSpec, Task, TaskGraph
from repro.arch.architecture import Architecture
from repro.cluster.clustering import cluster_spec
from repro.cluster.priority import PriorityContext
from repro.core.crusade import _compute_priorities
from repro.graph.association import AssociationArray
from repro.reconfig.compatibility import CompatibilityAnalysis
from repro.reconfig.merge import merge_reconfigurable_pes
from repro.alloc.evaluate import evaluate_architecture


def hw_graph(name, est, period=1.0, gates=800):
    g = TaskGraph(name=name, period=period, deadline=period / 2, est=est)
    g.add_task(Task(name=name + ".t", exec_times={"FPGA": 1e-3},
                    area_gates=gates, pins=10))
    return g


@pytest.fixture
def merge_setup(small_library):
    """Two compatible graphs on two separate single-mode FPGAs: the
    canonical merge opportunity."""
    spec = SystemSpec(
        "s",
        [hw_graph("ga", est=0.0), hw_graph("gb", est=0.5)],
        compatibility=[("ga", "gb")],
    )
    clustering = cluster_spec(spec, small_library)
    compat = CompatibilityAnalysis.from_spec(spec)
    arch = Architecture(small_library)
    for name in ("ga/c000", "gb/c000"):
        c = clustering.clusters[name]
        pe = arch.new_pe(small_library.pe_type("FPGA"))
        arch.allocate_cluster(name, pe.id, 0, gates=c.area_gates, pins=c.pins)
    assoc = AssociationArray(spec, max_explicit_copies=2)
    priorities = _compute_priorities(spec, PriorityContext.pessimistic(small_library))

    def evaluate(candidate):
        return evaluate_architecture(
            spec, assoc, clustering, candidate, priorities,
            boot_time_fn=lambda pe, mode: 0.01,
        )

    return spec, clustering, compat, arch, evaluate


class TestMerge:
    def test_merges_compatible_devices(self, merge_setup):
        spec, clustering, compat, arch, evaluate = merge_setup
        initial = evaluate(arch)
        assert initial.feasible
        outcome = merge_reconfigurable_pes(
            spec, clustering, compat, DelayPolicy(), initial, evaluate
        )
        assert outcome.merges_accepted == 1
        assert outcome.arch.n_pes == 1
        merged = outcome.arch.programmable_pes()[0]
        assert merged.n_modes == 2
        assert outcome.result.cost < initial.cost

    def test_merge_reduces_merge_potential(self, merge_setup):
        spec, clustering, compat, arch, evaluate = merge_setup
        initial = evaluate(arch)
        before = arch.merge_potential()
        outcome = merge_reconfigurable_pes(
            spec, clustering, compat, DelayPolicy(), initial, evaluate
        )
        assert outcome.arch.merge_potential() < before

    def test_incompatible_devices_not_merged(self, small_library):
        spec = SystemSpec(
            "s",
            [hw_graph("ga", est=0.0), hw_graph("gb", est=0.0)],
            compatibility=[],
        )
        clustering = cluster_spec(spec, small_library)
        compat = CompatibilityAnalysis.from_spec(spec)
        arch = Architecture(small_library)
        for name in ("ga/c000", "gb/c000"):
            c = clustering.clusters[name]
            pe = arch.new_pe(small_library.pe_type("FPGA"))
            arch.allocate_cluster(name, pe.id, 0, gates=c.area_gates, pins=c.pins)
        assoc = AssociationArray(spec, max_explicit_copies=2)
        priorities = _compute_priorities(
            spec, PriorityContext.pessimistic(small_library)
        )

        def evaluate(candidate):
            return evaluate_architecture(
                spec, assoc, clustering, candidate, priorities
            )

        initial = evaluate(arch)
        outcome = merge_reconfigurable_pes(
            spec, clustering, compat, DelayPolicy(), initial, evaluate
        )
        assert outcome.merges_accepted == 0
        assert outcome.arch.n_pes == 2

    def test_requires_feasible_start(self, merge_setup, small_library):
        spec, clustering, compat, arch, evaluate = merge_setup
        initial = evaluate(arch)
        initial.report.lateness[("ga", 0, "ga.t")] = 1.0  # fake a miss
        with pytest.raises(AllocationError):
            merge_reconfigurable_pes(
                spec, clustering, compat, DelayPolicy(), initial, evaluate
            )

    def test_evaluator_returning_none_rejects(self, merge_setup):
        spec, clustering, compat, arch, evaluate = merge_setup
        initial = evaluate(arch)
        calls = {"n": 0}

        def broken(candidate):
            calls["n"] += 1
            return None

        outcome = merge_reconfigurable_pes(
            spec, clustering, compat, DelayPolicy(), initial, broken
        )
        assert outcome.merges_accepted == 0
        assert calls["n"] >= 1
