"""Merge-array construction: ordering and candidate filtering."""

import pytest

from repro import DelayPolicy, SystemSpec, Task, TaskGraph
from repro.arch.architecture import Architecture
from repro.cluster.clustering import cluster_spec
from repro.reconfig.compatibility import CompatibilityAnalysis
from repro.reconfig.merge import _donor_fits_host, _merge_array


def hw(name, est, gates=300):
    g = TaskGraph(name=name, period=1.0, deadline=0.25, est=est)
    g.add_task(Task(name=name + ".t", exec_times={"FPGA": 1e-3, "AT6005": 1e-3},
                    area_gates=gates, pins=4))
    return g


@pytest.fixture
def four_device_setup(library):
    """Four pairwise-compatible graphs on four devices of two types."""
    graphs = [hw("g%d" % i, est=i * 0.25) for i in range(4)]
    pairs = [(a.name, b.name) for i, a in enumerate(graphs)
             for b in graphs[i + 1:]]
    spec = SystemSpec("s", graphs, compatibility=pairs)
    clustering = cluster_spec(spec, library)
    compat = CompatibilityAnalysis.from_spec(spec)
    arch = Architecture(library)
    types = ["AT6005", "AT6010", "AT6005", "AT6010"]
    for i, graph in enumerate(graphs):
        cluster = clustering.cluster_of(graph.name, graph.name + ".t")
        pe = arch.new_pe(library.pe_type(types[i]))
        arch.allocate_cluster(cluster.name, pe.id, 0,
                              gates=cluster.area_gates, pins=cluster.pins)
    return spec, clustering, compat, arch


class TestMergeArray:
    def test_costliest_donor_first(self, library, four_device_setup):
        spec, clustering, compat, arch = four_device_setup
        pairs = _merge_array(arch, clustering, compat, DelayPolicy())
        assert pairs, "compatible devices must produce candidates"
        donor_costs = [arch.pe(d).pe_type.cost for _, d in pairs]
        assert donor_costs == sorted(donor_costs, reverse=True)

    def test_incompatible_graphs_filtered(self, library):
        ga, gb = hw("ga", 0.0), hw("gb", 0.0)  # overlapping
        spec = SystemSpec("s", [ga, gb], compatibility=[])
        clustering = cluster_spec(spec, library)
        compat = CompatibilityAnalysis.from_spec(spec)
        arch = Architecture(library)
        for name in ("ga", "gb"):
            cluster = clustering.cluster_of(name, name + ".t")
            pe = arch.new_pe(library.pe_type("AT6005"))
            arch.allocate_cluster(cluster.name, pe.id, 0,
                                  gates=cluster.area_gates, pins=cluster.pins)
        assert _merge_array(arch, clustering, compat, DelayPolicy()) == []

    def test_donor_capacity_filter(self, library):
        host = Architecture(library).new_pe(library.pe_type("XC9536"))
        donor = Architecture(library).new_pe(library.pe_type("AT6010"))
        donor.mode(0).gates_used = 5000  # far beyond a 36-PFU CPLD
        assert not _donor_fits_host(donor, host, DelayPolicy())

    def test_empty_donors_skipped(self, library, four_device_setup):
        spec, clustering, compat, arch = four_device_setup
        empty = arch.new_pe(library.pe_type("AT6005"))
        pairs = _merge_array(arch, clustering, compat, DelayPolicy())
        assert all(donor != empty.id for _, donor in pairs)
