"""Reboot-time accounting and post-merge mode combining."""

import pytest

from repro import DelayPolicy, SystemSpec, Task, TaskGraph
from repro.arch.architecture import Architecture
from repro.cluster.clustering import cluster_spec
from repro.cluster.priority import PriorityContext
from repro.core.crusade import _compute_priorities
from repro.graph.association import AssociationArray
from repro.reconfig.compatibility import CompatibilityAnalysis
from repro.reconfig.merge import merge_reconfigurable_pes
from repro.reconfig.reboot import boot_time_for_bits, default_boot_time
from repro.alloc.evaluate import evaluate_architecture


class TestBootTime:
    def test_bits_over_rate(self):
        assert boot_time_for_bits(4_000_000, clock_hz=4e6, width_bits=1) == 1.0
        assert boot_time_for_bits(4_000_000, clock_hz=4e6, width_bits=8) == 0.125

    def test_invalid(self):
        with pytest.raises(ValueError):
            boot_time_for_bits(-1)
        with pytest.raises(ValueError):
            boot_time_for_bits(10, clock_hz=0)

    def test_processor_never_reboots(self, small_library):
        arch = Architecture(small_library)
        cpu = arch.new_pe(small_library.pe_type("CPU"))
        assert default_boot_time(cpu, 0) == 0.0

    def test_single_mode_device_boots_free(self, small_library):
        arch = Architecture(small_library)
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        arch.allocate_cluster("c", fpga.id, 0, gates=500)
        assert default_boot_time(fpga, 0) == 0.0

    def test_multimode_full_reconfig_streams_whole_image(self, small_library):
        arch = Architecture(small_library)
        fpga = arch.new_pe(small_library.pe_type("FPGA"))
        fpga.new_mode()
        arch.allocate_cluster("c0", fpga.id, 0, gates=500)
        arch.allocate_cluster("c1", fpga.id, 1, gates=100)
        boot0 = default_boot_time(fpga, 0)
        boot1 = default_boot_time(fpga, 1)
        # Fixture FPGA is full-reconfiguration: both modes stream the
        # complete image regardless of usage.
        assert boot0 == boot1 > 0.0

    def test_partial_reconfig_scales_with_mode_usage(self, library):
        arch = Architecture(library)
        at = arch.new_pe(library.pe_type("AT6005"))  # partial reconfig
        at.new_mode()
        arch.allocate_cluster("big", at.id, 0, gates=5000)
        arch.allocate_cluster("small", at.id, 1, gates=500)
        assert default_boot_time(at, 0) > default_boot_time(at, 1) > 0.0


class TestModeCombining:
    def test_small_modes_combine_after_merge(self, small_library):
        """Two tiny compatible circuits merged into one device should
        end up in ONE mode when they fit together -- Section 4.2's
        final step removes the needless reconfiguration."""
        def graph(name, est):
            g = TaskGraph(name=name, period=1.0, deadline=0.5, est=est)
            g.add_task(Task(name=name + ".t", exec_times={"FPGA": 1e-3},
                            area_gates=200, pins=4))
            return g

        spec = SystemSpec(
            "s", [graph("ga", 0.0), graph("gb", 0.5)],
            compatibility=[("ga", "gb")],
        )
        clustering = cluster_spec(spec, small_library)
        compat = CompatibilityAnalysis.from_spec(spec)
        arch = Architecture(small_library)
        for name in ("ga/c000", "gb/c000"):
            c = clustering.clusters[name]
            pe = arch.new_pe(small_library.pe_type("FPGA"))
            arch.allocate_cluster(name, pe.id, 0, gates=c.area_gates, pins=c.pins)
        assoc = AssociationArray(spec, max_explicit_copies=2)
        priorities = _compute_priorities(
            spec, PriorityContext.pessimistic(small_library)
        )

        def evaluate(candidate):
            return evaluate_architecture(
                spec, assoc, clustering, candidate, priorities,
                boot_time_fn=lambda pe, mode: 0.01,
            )

        outcome = merge_reconfigurable_pes(
            spec, clustering, compat, DelayPolicy(), evaluate(arch), evaluate,
            combine_modes=True,
        )
        assert outcome.merges_accepted == 1
        # 200+200 gates fit one mode under the cap: combined.
        assert outcome.mode_combines == 1
        merged = outcome.arch.programmable_pes()[0]
        assert merged.n_modes == 1
        assert outcome.result.schedule.reconfigurations == 0

    def test_combining_disabled(self, small_library):
        def graph(name, est):
            g = TaskGraph(name=name, period=1.0, deadline=0.5, est=est)
            g.add_task(Task(name=name + ".t", exec_times={"FPGA": 1e-3},
                            area_gates=200, pins=4))
            return g

        spec = SystemSpec(
            "s", [graph("ga", 0.0), graph("gb", 0.5)],
            compatibility=[("ga", "gb")],
        )
        clustering = cluster_spec(spec, small_library)
        compat = CompatibilityAnalysis.from_spec(spec)
        arch = Architecture(small_library)
        for name in ("ga/c000", "gb/c000"):
            c = clustering.clusters[name]
            pe = arch.new_pe(small_library.pe_type("FPGA"))
            arch.allocate_cluster(name, pe.id, 0, gates=c.area_gates, pins=c.pins)
        assoc = AssociationArray(spec, max_explicit_copies=2)
        priorities = _compute_priorities(
            spec, PriorityContext.pessimistic(small_library)
        )

        def evaluate(candidate):
            return evaluate_architecture(
                spec, assoc, clustering, candidate, priorities,
                boot_time_fn=lambda pe, mode: 0.01,
            )

        outcome = merge_reconfigurable_pes(
            spec, clustering, compat, DelayPolicy(), evaluate(arch), evaluate,
            combine_modes=False,
        )
        assert outcome.mode_combines == 0
        assert outcome.arch.programmable_pes()[0].n_modes == 2
