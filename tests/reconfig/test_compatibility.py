"""Compatibility analysis: explicit vectors and schedule detection."""

import pytest

from repro import SpecificationError, SystemSpec, Task, TaskGraph
from repro.reconfig.compatibility import (
    CompatibilityAnalysis,
    windows_overlap_periodic,
)


def graph(name, period=1.0, est=0.0, deadline=None):
    g = TaskGraph(name=name, period=period, deadline=deadline or period / 2, est=est)
    g.add_task(Task(name=name + ".t", exec_times={"CPU": 1e-3}))
    return g


class TestPeriodicOverlap:
    def test_disjoint_same_period(self):
        a = [(0.0, 0.4)]
        b = [(0.5, 0.9)]
        assert not windows_overlap_periodic(a, 1.0, b, 1.0)

    def test_overlapping_same_period(self):
        assert windows_overlap_periodic([(0.0, 0.6)], 1.0, [(0.5, 0.9)], 1.0)

    def test_different_periods_collide_via_repetition(self):
        # a occupies [0, 0.1) every 0.5; b occupies [0.25, 0.35) every
        # 0.75.  gcd = 0.25: a mod = [0, 0.1); b mod = [0, 0.1) -> hit.
        assert windows_overlap_periodic([(0.0, 0.1)], 0.5, [(0.25, 0.35)], 0.75)

    def test_different_periods_disjoint_residues(self):
        # a: [0, 0.1) mod 0.25 -> [0, 0.1); b: [0.6, 0.7) mod 0.25 ->
        # [0.1, 0.2): disjoint on the gcd ring.
        assert not windows_overlap_periodic([(0.0, 0.1)], 0.5, [(0.6, 0.7)], 0.25)

    def test_window_covering_ring_always_overlaps(self):
        assert windows_overlap_periodic([(0.0, 0.5)], 0.5, [(0.7, 0.8)], 1.0)

    def test_wraparound_windows(self):
        # a wraps the ring boundary.
        assert windows_overlap_periodic([(0.9, 1.1)], 1.0, [(0.05, 0.08)], 1.0)
        assert not windows_overlap_periodic([(0.9, 1.1)], 1.0, [(0.2, 0.3)], 1.0)

    def test_empty_windows_never_overlap(self):
        assert not windows_overlap_periodic([], 1.0, [(0.0, 1.0)], 1.0)


class TestExplicitAnalysis:
    def test_from_spec(self):
        spec = SystemSpec(
            "s", [graph("a"), graph("b"), graph("c")], compatibility=[("a", "b")]
        )
        analysis = CompatibilityAnalysis.from_spec(spec)
        assert analysis.compatible("a", "b")
        assert not analysis.compatible("a", "c")
        assert not analysis.compatible("a", "a")
        assert analysis.source == "explicit"

    def test_from_spec_requires_vectors(self):
        spec = SystemSpec("s", [graph("a"), graph("b")])
        with pytest.raises(SpecificationError):
            CompatibilityAnalysis.from_spec(spec)

    def test_all_compatible_groups(self):
        spec = SystemSpec(
            "s",
            [graph(n) for n in "abcd"],
            compatibility=[("a", "c"), ("a", "d"), ("b", "c"), ("b", "d")],
        )
        analysis = CompatibilityAnalysis.from_spec(spec)
        assert analysis.all_compatible({"a", "b"}, {"c", "d"})
        assert not analysis.all_compatible({"a"}, {"b"})
        assert not analysis.all_compatible({"a"}, {"a", "c"})  # self

    def test_vector_rendering(self):
        spec = SystemSpec(
            "s", [graph("a"), graph("b"), graph("c")], compatibility=[("a", "b")]
        )
        analysis = CompatibilityAnalysis.from_spec(spec)
        assert analysis.compatibility_vector("a") == {"b": 0, "c": 1}


class TestScheduleDetection:
    def build_and_schedule(self, spec, small_library, placements):
        from tests.sched.test_scheduler import schedule_spec

        return schedule_spec(spec, small_library, placements)

    def test_detects_disjoint_windows(self, small_library):
        spec = SystemSpec(
            "s", [graph("a", est=0.0), graph("b", est=0.5)]
        )
        schedule, *_ = self.build_and_schedule(spec, small_library, {
            "a/s0000": ("CPU#0", 0), "b/s0001" if False else "b/s0000": ("CPU#1", 0),
        })
        analysis = CompatibilityAnalysis.from_schedule(spec, schedule)
        assert analysis.compatible("a", "b")
        assert analysis.source == "schedule"

    def test_detects_overlap(self, small_library):
        spec = SystemSpec(
            "s", [graph("a", est=0.0), graph("b", est=0.0)]
        )
        schedule, *_ = self.build_and_schedule(spec, small_library, {
            "a/s0000": ("CPU#0", 0), "b/s0000": ("CPU#1", 0),
        })
        analysis = CompatibilityAnalysis.from_schedule(spec, schedule)
        assert not analysis.compatible("a", "b")

    def test_resolve_prefers_explicit(self, small_library):
        spec = SystemSpec(
            "s", [graph("a"), graph("b")], compatibility=[("a", "b")]
        )
        analysis = CompatibilityAnalysis.resolve(spec, schedule=None)
        assert analysis.source == "explicit"

    def test_resolve_without_anything_raises(self):
        spec = SystemSpec("s", [graph("a"), graph("b")])
        with pytest.raises(SpecificationError):
            CompatibilityAnalysis.resolve(spec, schedule=None)
