"""CPLD boundary-scan programming and service-module hints."""

import pytest

from repro import SystemSpec, Task, TaskGraph
from repro.arch.architecture import Architecture
from repro.cluster.clustering import trivial_clustering
from repro.graph.task import MemoryRequirement
from repro.reconfig.interface import (
    InterfaceKind,
    default_option_array,
    synthesize_interface,
)
from repro.ft.recovery import allocate_spares, service_modules_of
from repro.resources import MemoryBank, PEKind, PpeType, ProcessorType, LinkType
from repro.resources.library import ResourceLibrary
from repro.units import MB


@pytest.fixture
def cpld_library():
    lib = ResourceLibrary()
    lib.add_pe_type(ProcessorType(
        name="CPU", cost=50.0, memory_banks=(MemoryBank(16 * MB, 20.0),),
    ))
    lib.add_pe_type(PpeType(
        name="CPLD", cost=12.0, device_kind=PEKind.CPLD, pfus=72,
        flip_flops=72, pins=44, config_bits_per_pfu=850,
    ))
    lib.add_pe_type(PpeType(
        name="FPGA", cost=100.0, device_kind=PEKind.FPGA, pfus=200,
        flip_flops=200, pins=64, config_bits_per_pfu=100,
    ))
    lib.add_link_type(LinkType(
        name="bus", cost=5.0, max_ports=4,
        access_times=(1e-6,) * 4, bytes_per_packet=64, packet_tx_time=2e-6,
    ))
    return lib


class TestJtag:
    def test_option_array_contains_capped_jtag(self):
        jtag = [o for o in default_option_array() if o.kind.is_jtag]
        assert jtag
        assert all(o.clock_hz <= 5e6 for o in jtag)

    def test_single_mode_cpld_is_free(self, cpld_library):
        arch = Architecture(cpld_library)
        arch.new_pe(cpld_library.pe_type("CPU"))
        cpld = arch.new_pe(cpld_library.pe_type("CPLD"))
        arch.allocate_cluster("c", cpld.id, 0, gates=100, pins=4)
        plan = synthesize_interface(arch, 0.2)
        device = plan.devices[cpld.id]
        # Flash CPLDs keep their image: no PROM, no run-time interface.
        assert device.cost_share == 0.0
        assert plan.boot_time_fn()(cpld, 0) == 0.0

    def test_multimode_cpld_uses_jtag(self, cpld_library):
        arch = Architecture(cpld_library)
        arch.new_pe(cpld_library.pe_type("CPU"))
        cpld = arch.new_pe(cpld_library.pe_type("CPLD"))
        cpld.new_mode()
        arch.allocate_cluster("c0", cpld.id, 0, gates=100, pins=4)
        arch.allocate_cluster("c1", cpld.id, 1, gates=100, pins=4)
        plan = synthesize_interface(arch, 0.5)
        assert plan.devices[cpld.id].option.kind is InterfaceKind.JTAG

    def test_fpga_never_uses_jtag(self, cpld_library):
        arch = Architecture(cpld_library)
        arch.new_pe(cpld_library.pe_type("CPU"))
        fpga = arch.new_pe(cpld_library.pe_type("FPGA"))
        fpga.new_mode()
        arch.allocate_cluster("c0", fpga.id, 0, gates=100, pins=4)
        arch.allocate_cluster("c1", fpga.id, 1, gates=100, pins=4)
        plan = synthesize_interface(arch, 0.5)
        assert not plan.devices[fpga.id].option.kind.is_jtag

    def test_jtag_cheaper_than_slave_serial(self, cpld_library):
        from repro.reconfig.interface import ProgrammingOption

        jtag = ProgrammingOption(InterfaceKind.JTAG, 1e6)
        slave = ProgrammingOption(InterfaceKind.SERIAL_SLAVE, 1e6)
        assert jtag.cost(4096) < slave.cost(4096)


class TestModuleHints:
    def _allocated(self, cpld_library):
        g = TaskGraph(name="g", period=1.0, deadline=0.5)
        g.add_task(Task(name="g.t", exec_times={"CPU": 1e-3},
                        memory=MemoryRequirement(program=64)))
        spec = SystemSpec("s", [g], unavailability={"g": 4.0})
        clustering = trivial_clustering(spec, cpld_library)
        arch = Architecture(cpld_library)
        cpu = arch.new_pe(cpld_library.pe_type("CPU"))
        for cluster in clustering.clusters.values():
            arch.allocate_cluster(cluster.name, cpu.id, 0, memory=cluster.memory)
        arch.new_pe(cpld_library.pe_type("CPLD"))
        arch.new_pe(cpld_library.pe_type("FPGA"))
        return spec, clustering, arch

    def test_hints_group_types(self, cpld_library):
        _, _, arch = self._allocated(cpld_library)
        hints = {"CPLD": "logic-card", "FPGA": "logic-card"}
        modules = service_modules_of(arch, hints=hints)
        assert "logic-card" in modules
        assert modules["logic-card"].n_active == 2
        assert "CPLD" not in modules

    def test_hinted_module_uses_worst_fit(self, cpld_library):
        _, _, arch = self._allocated(cpld_library)
        hints = {"CPLD": "logic-card", "FPGA": "logic-card"}
        modules = service_modules_of(arch, hints=hints)
        plain = service_modules_of(arch)
        assert modules["logic-card"].fit_per_unit == max(
            plain["CPLD"].fit_per_unit, plain["FPGA"].fit_per_unit
        )

    def test_spares_with_hints(self, cpld_library):
        spec, clustering, arch = self._allocated(cpld_library)
        tight = SystemSpec(
            "s2", [spec.graph("g")], unavailability={"g": 0.05}
        )
        allocation = allocate_spares(
            arch, clustering, tight, hints={"CPU": "cpu-card"}
        )
        assert allocation.met
        assert allocation.total_spares() >= 1
        assert "cpu-card" in allocation.modules
        # The spare unit is priced at the costliest member part.
        assert allocation.spare_cost >= 50.0
