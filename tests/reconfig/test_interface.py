"""Reconfiguration controller interface synthesis (Section 4.4)."""

import pytest

from repro import SynthesisError
from repro.arch.architecture import Architecture
from repro.reconfig.interface import (
    InterfaceKind,
    ProgrammingOption,
    default_option_array,
    synthesize_interface,
)
from repro.units import KB


@pytest.fixture
def arch(small_library):
    return Architecture(small_library)


class TestProgrammingOption:
    def test_boot_time_scales_with_width_and_clock(self):
        serial = ProgrammingOption(InterfaceKind.SERIAL_MASTER, 1e6)
        parallel = ProgrammingOption(InterfaceKind.PARALLEL_MASTER, 1e6)
        fast = ProgrammingOption(InterfaceKind.SERIAL_MASTER, 10e6)
        bits = 1_000_000
        assert serial.boot_time(bits) == pytest.approx(1.0)
        assert parallel.boot_time(bits) == pytest.approx(1.0 / 8)
        assert fast.boot_time(bits) == pytest.approx(0.1)

    def test_master_cost_grows_with_storage(self):
        option = ProgrammingOption(InterfaceKind.SERIAL_MASTER, 1e6)
        assert option.cost(512 * KB) > option.cost(64 * KB)

    def test_faster_master_costs_more(self):
        slow = ProgrammingOption(InterfaceKind.SERIAL_MASTER, 1e6)
        fast = ProgrammingOption(InterfaceKind.SERIAL_MASTER, 10e6)
        assert fast.cost(128 * KB) > slow.cost(128 * KB)

    def test_parallel_master_costs_more(self):
        serial = ProgrammingOption(InterfaceKind.SERIAL_MASTER, 4e6)
        parallel = ProgrammingOption(InterfaceKind.PARALLEL_MASTER, 4e6)
        assert parallel.cost(128 * KB) > serial.cost(128 * KB)

    def test_option_array_ordered_by_cost(self):
        options = default_option_array()
        costs = [o.cost(256 * KB) for o in options]
        assert costs == sorted(costs)
        # 4 FPGA kinds x 5 clocks + JTAG capped at 5 MHz (3 clocks).
        assert len(options) == 23


class TestSynthesis:
    def add_fpga(self, arch, small_library, modes=1, gates_per_mode=500):
        pe = arch.new_pe(small_library.pe_type("FPGA"))
        for m in range(1, modes):
            pe.new_mode()
        for m in range(modes):
            arch.allocate_cluster(
                "c%s%d" % (pe.id, m), pe.id, m, gates=gates_per_mode, pins=4
            )
        return pe

    def test_single_mode_devices_share_a_powerup_chain(self, arch, small_library):
        a = self.add_fpga(arch, small_library)
        b = self.add_fpga(arch, small_library)
        plan = synthesize_interface(arch, 0.2)
        da, db = plan.devices[a.id], plan.devices[b.id]
        assert da.chained_with == db.chained_with == tuple(sorted((a.id, b.id)))
        assert da.option.kind.is_master
        # Chained power-up devices never reconfigure at run time.
        fn = plan.boot_time_fn()
        assert fn(a, 0) == 0.0

    def test_multimode_device_gets_dedicated_interface(self, arch, small_library):
        pe = self.add_fpga(arch, small_library, modes=2)
        plan = synthesize_interface(arch, 0.5)
        device = plan.devices[pe.id]
        assert device.chained_with == ()
        fn = plan.boot_time_fn()
        assert fn(pe, 0) > 0.0
        assert fn(pe, 1) > 0.0

    def test_boot_time_requirement_drives_option_up(self, arch, small_library):
        pe = self.add_fpga(arch, small_library, modes=2, gates_per_mode=900)
        relaxed = synthesize_interface(arch, 1.0)
        tight = synthesize_interface(arch, 0.002)
        worst_relaxed = max(relaxed.devices[pe.id].runtime_boot_times.values())
        worst_tight = max(tight.devices[pe.id].runtime_boot_times.values())
        assert worst_tight <= 0.002
        assert relaxed.devices[pe.id].cost_share <= tight.devices[pe.id].cost_share
        assert worst_relaxed >= worst_tight

    def test_impossible_requirement_raises(self, arch, small_library):
        self.add_fpga(arch, small_library, modes=2, gates_per_mode=900)
        with pytest.raises(SynthesisError):
            synthesize_interface(arch, 1e-9)

    def test_slave_options_need_a_processor(self, arch, small_library):
        pe = self.add_fpga(arch, small_library, modes=2)
        plan = synthesize_interface(arch, 0.5, has_processor=False)
        assert plan.devices[pe.id].option.kind.is_master

    def test_total_cost_lands_on_architecture(self, arch, small_library):
        self.add_fpga(arch, small_library, modes=2)
        plan = synthesize_interface(arch, 0.5)
        assert arch.interface_cost == pytest.approx(plan.total_cost)
        assert plan.total_cost > 0

    def test_no_ppes_is_free(self, arch, small_library):
        arch.new_pe(small_library.pe_type("CPU"))
        plan = synthesize_interface(arch, 0.2)
        assert plan.total_cost == 0.0
        assert not plan.devices
