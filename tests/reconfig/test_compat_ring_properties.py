"""Property test: periodic window overlap is symmetric and consistent
with brute-force expansion over the hyperperiod."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.reconfig.compatibility import windows_overlap_periodic
from repro.units import US


def brute_force_overlap(wa, pa, wb, pb, horizon):
    """Expand both periodic window sets explicitly and intersect."""
    def expand(windows, period):
        out = []
        k = 0
        while k * period < horizon:
            for s, e in windows:
                out.append((s + k * period, e + k * period))
            k += 1
        return out

    for sa, ea in expand(wa, pa):
        for sb, eb in expand(wb, pb):
            if sa < eb - 1e-12 and sb < ea - 1e-12:
                return True
    return False


@settings(max_examples=60, deadline=None)
@given(
    start_a=st.integers(min_value=0, max_value=40),
    len_a=st.integers(min_value=1, max_value=20),
    start_b=st.integers(min_value=0, max_value=40),
    len_b=st.integers(min_value=1, max_value=20),
    pa_factor=st.sampled_from([2, 3, 4, 6]),
    pb_factor=st.sampled_from([2, 3, 4, 6]),
)
def test_matches_brute_force(start_a, len_a, start_b, len_b, pa_factor, pb_factor):
    # Work on a 1 ms grid; periods 50-60 units keep windows inside.
    unit = 1e-3
    pa = pa_factor * 30 * unit
    pb = pb_factor * 30 * unit
    wa = [(start_a * unit, (start_a + len_a) * unit)]
    wb = [(start_b * unit, (start_b + len_b) * unit)]
    horizon = math.lcm(pa_factor, pb_factor) * 30 * unit * 2
    expected = brute_force_overlap(wa, pa, wb, pb, horizon)
    got = windows_overlap_periodic(wa, pa, wb, pb, tick=unit / 10)
    assert got == expected


@settings(max_examples=40, deadline=None)
@given(
    start_a=st.floats(min_value=0, max_value=0.5),
    start_b=st.floats(min_value=0, max_value=0.5),
    length=st.floats(min_value=0.01, max_value=0.3),
)
def test_symmetric(start_a, start_b, length):
    wa = [(start_a, start_a + length)]
    wb = [(start_b, start_b + length)]
    ab = windows_overlap_periodic(wa, 1.0, wb, 1.0)
    ba = windows_overlap_periodic(wb, 1.0, wa, 1.0)
    assert ab == ba
