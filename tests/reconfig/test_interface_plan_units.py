"""InterfacePlan units: boot-time callable, storage sizing."""

import pytest

from repro.arch.architecture import Architecture
from repro.reconfig.interface import (
    InterfacePlan,
    _storage_bytes,
    synthesize_interface,
)


class TestBootTimeFn:
    def test_unknown_pe_boots_free(self, small_library):
        plan = InterfacePlan()
        arch = Architecture(small_library)
        pe = arch.new_pe(small_library.pe_type("FPGA"))
        assert plan.boot_time_fn()(pe, 0) == 0.0

    def test_unknown_mode_boots_free(self, small_library):
        arch = Architecture(small_library)
        pe = arch.new_pe(small_library.pe_type("FPGA"))
        pe.new_mode()
        arch.allocate_cluster("c0", pe.id, 0, gates=100, pins=2)
        arch.allocate_cluster("c1", pe.id, 1, gates=100, pins=2)
        plan = synthesize_interface(arch, 0.5)
        fn = plan.boot_time_fn()
        assert fn(pe, 99) == 0.0  # out-of-range mode: no charge


class TestStorageSizing:
    def test_full_reconfig_stores_full_image_per_mode(self, small_library):
        arch = Architecture(small_library)
        pe = arch.new_pe(small_library.pe_type("FPGA"))
        pe.new_mode()
        arch.allocate_cluster("c0", pe.id, 0, gates=100, pins=2)
        arch.allocate_cluster("c1", pe.id, 1, gates=10, pins=2)
        # Fixture FPGA: 200 PFUs x 100 bits = 20000 bits -> 2500 B/mode.
        assert _storage_bytes(pe) == 2 * 2500

    def test_partial_reconfig_stores_used_pfus(self, library):
        arch = Architecture(library)
        pe = arch.new_pe(library.pe_type("AT6005"))  # partial, 64 b/PFU
        pe.new_mode()
        arch.allocate_cluster("c0", pe.id, 0, gates=1000, pins=2)  # 100 PFUs
        arch.allocate_cluster("c1", pe.id, 1, gates=500, pins=2)   # 50 PFUs
        expected_bits = (100 + 50) * 64
        assert _storage_bytes(pe) == (expected_bits + 7) // 8

    def test_interface_cost_scales_with_modes(self, small_library):
        def build(n_modes):
            arch = Architecture(small_library)
            arch.new_pe(small_library.pe_type("CPU"))
            pe = arch.new_pe(small_library.pe_type("FPGA"))
            for m in range(1, n_modes):
                pe.new_mode()
            for m in range(n_modes):
                arch.allocate_cluster("c%d" % m, pe.id, m, gates=100, pins=2)
            return synthesize_interface(arch, 0.5).total_cost

        assert build(3) >= build(2)
