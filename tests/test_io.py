"""JSON round-tripping of specifications and result export."""

import json

import pytest

from repro import (
    CrusadeConfig,
    GeneratorConfig,
    SpecificationError,
    crusade,
    generate_spec,
    validate_spec,
)
from repro.io.result_json import result_to_dict, save_result_file
from repro.io.spec_json import (
    load_spec,
    load_spec_file,
    save_spec_file,
    spec_from_dict,
    spec_to_dict,
)


@pytest.fixture(scope="module")
def rich_spec():
    """A generated spec exercising every serialized field."""
    return generate_spec(GeneratorConfig(
        seed=17, n_graphs=4, tasks_per_graph=9, compat_group_size=2,
        utilization=0.2,
    ))


class TestSpecRoundTrip:
    def test_roundtrip_preserves_everything(self, rich_spec):
        clone = spec_from_dict(spec_to_dict(rich_spec))
        assert clone.name == rich_spec.name
        assert clone.graph_names() == rich_spec.graph_names()
        assert clone.total_tasks == rich_spec.total_tasks
        assert clone.boot_time_requirement == rich_spec.boot_time_requirement
        assert clone.unavailability == rich_spec.unavailability
        for name in rich_spec.graph_names():
            original = rich_spec.graph(name)
            loaded = clone.graph(name)
            assert loaded.period == original.period
            assert loaded.deadline == original.deadline
            assert loaded.est == original.est
            assert set(loaded.tasks) == set(original.tasks)
            assert set(loaded.edges) == set(original.edges)
            for task_name, task in original.tasks.items():
                twin = loaded.task(task_name)
                assert dict(twin.exec_times) == dict(task.exec_times)
                assert twin.memory == task.memory
                assert twin.area_gates == task.area_gates
                assert twin.exclusions == task.exclusions
                assert twin.error_transparent == task.error_transparent
                assert len(twin.assertions) == len(task.assertions)
        for a in rich_spec.graph_names():
            for b in rich_spec.graph_names():
                if a != b:
                    assert clone.compatible(a, b) == rich_spec.compatible(a, b)

    def test_roundtrip_validates(self, rich_spec, library):
        clone = spec_from_dict(spec_to_dict(rich_spec))
        validate_spec(clone, library)

    def test_file_roundtrip(self, rich_spec, tmp_path):
        path = tmp_path / "spec.json"
        save_spec_file(rich_spec, path)
        loaded = load_spec_file(path)
        assert loaded.total_tasks == rich_spec.total_tasks
        # The file is real, stable JSON.
        payload = json.loads(path.read_text())
        assert payload["format"] == "crusade-spec"

    def test_text_loading(self, rich_spec):
        text = json.dumps(spec_to_dict(rich_spec))
        assert load_spec(text).name == rich_spec.name

    def test_wrong_format_rejected(self):
        with pytest.raises(SpecificationError):
            spec_from_dict({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self, rich_spec):
        payload = spec_to_dict(rich_spec)
        payload["version"] = 99
        with pytest.raises(SpecificationError):
            spec_from_dict(payload)

    def test_synthesis_agrees_after_roundtrip(self, rich_spec):
        """The serialized spec drives the same architecture."""
        clone = spec_from_dict(spec_to_dict(rich_spec))
        config = CrusadeConfig(max_explicit_copies=2)
        a = crusade(rich_spec, config=config)
        b = crusade(clone, config=config)
        assert a.cost == pytest.approx(b.cost)
        assert a.n_pes == b.n_pes


class TestResultExport:
    @pytest.fixture(scope="class")
    def result(self, rich_spec=None):
        spec = generate_spec(GeneratorConfig(
            seed=17, n_graphs=3, tasks_per_graph=8, compat_group_size=2,
            utilization=0.2,
        ))
        return crusade(spec, config=CrusadeConfig(max_explicit_copies=2))

    def test_export_structure(self, result):
        payload = result_to_dict(result)
        assert payload["format"] == "crusade-result"
        assert payload["feasible"] == result.feasible
        assert payload["cost"] == pytest.approx(result.cost)
        arch = payload["architecture"]
        assert len(arch["pes"]) == result.n_pes
        assert len(arch["links"]) == result.n_links
        assert len(arch["allocation"]) == result.clustering.n_clusters
        assert arch["cost_breakdown"]["total"] == pytest.approx(result.cost)

    def test_export_schedule_consistent(self, result):
        payload = result_to_dict(result)
        tasks = payload["schedule"]["tasks"]
        assert len(tasks) == len(result.schedule.tasks)
        for record in tasks:
            assert record["finish"] >= record["start"]

    def test_export_is_json_serializable(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_result_file(result, path)
        loaded = json.loads(path.read_text())
        assert loaded["system"] == result.spec.name
