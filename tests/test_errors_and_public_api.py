"""Error hierarchy and public-API surface."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    @pytest.mark.parametrize("name", [
        "SpecificationError", "ResourceLibraryError", "AllocationError",
        "SchedulingError", "SynthesisError", "RoutingError",
        "DependabilityError",
    ])
    def test_all_derive_from_repro_error(self, name):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)
        assert issubclass(cls, Exception)

    def test_synthesis_error_carries_best_result(self):
        err = errors.SynthesisError("msg", best_result="sentinel")
        assert err.best_result == "sentinel"
        bare = errors.SynthesisError("msg")
        assert bare.best_result is None


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", [
        "Task", "TaskGraph", "SystemSpec", "crusade", "crusade_ft",
        "default_library", "render_architecture", "generate_spec",
        "validate_schedule", "validate_architecture", "render_gantt",
        "save_spec_file", "load_spec_file",
    ])
    def test_key_entry_points_exported(self, name):
        assert name in repro.__all__

    def test_every_public_callable_has_a_docstring(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not getattr(obj, "__doc__", None):
                undocumented.append(name)
        assert not undocumented, undocumented

    def test_public_modules_have_docstrings(self):
        import importlib
        import pkgutil

        missing = []
        package = repro
        for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not module.__doc__:
                missing.append(info.name)
        assert not missing, missing
