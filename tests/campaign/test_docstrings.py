"""Docstring coverage gate for the documented packages and the API.

Gated packages: repro.perf, repro.campaign, the synthesis service
(repro.service plus its repro.io.service_json schemas), and the
staged synthesis pipeline (repro.core plus repro.core.stages).  CI
enforces the same contract with ruff's pydocstyle D1 rules (see
pyproject.toml); this AST-based test keeps the gate verifiable in
environments without ruff installed.
"""

from __future__ import annotations

import ast
import pathlib

import pytest

import repro

SRC = pathlib.Path(repro.__file__).resolve().parent
GATED_PACKAGES = ("perf", "campaign", "core", "core/stages", "exec", "service")
GATED_MODULES = ("io/service_json.py",)


def _gated_modules():
    files = [SRC / "__init__.py"]
    for package in GATED_PACKAGES:
        files.extend(sorted((SRC / package).glob("*.py")))
    files.extend(SRC / module for module in GATED_MODULES)
    return files


def _missing_docstrings(path: pathlib.Path):
    """(line, name) for every undocumented module/public def in ``path``."""
    tree = ast.parse(path.read_text())
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append((1, "<module>"))
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if node.name.startswith("_") and node.name != "__init__":
            continue
        if ast.get_docstring(node) is None:
            missing.append((node.lineno, node.name))
    return missing


@pytest.mark.parametrize(
    "path", _gated_modules(), ids=lambda p: str(p.relative_to(SRC))
)
def test_module_and_public_defs_are_documented(path):
    missing = _missing_docstrings(path)
    assert missing == [], (
        "undocumented definitions in %s: %s"
        % (path.name, ", ".join("%s:%d" % (n, ln) for ln, n in missing))
    )


def test_every_top_level_export_has_a_docstring():
    undocumented = [
        name
        for name in repro.__all__
        if not (getattr(getattr(repro, name), "__doc__", None) or "").strip()
    ]
    assert undocumented == []
