"""Grid expansion, variants, retry policy, and spec round-trips."""

from __future__ import annotations

import pytest

from repro.errors import SpecificationError
from repro.io.campaign_json import canonical_dumps
from repro.campaign import (
    CampaignSpec,
    RetryPolicy,
    Variant,
    expand_jobs,
    spec_from_flags,
)
from repro.campaign.grid import VARIANT_PRESETS, job_id


def _spec(**overrides):
    defaults = dict(
        name="t",
        kind="selftest",
        examples=("a", "b"),
        scales=(0.05, 0.1),
        variants=(Variant("default"), Variant("no-prune", {"prune": False})),
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def test_expansion_is_the_full_grid_in_axis_order():
    jobs = expand_jobs(_spec())
    assert len(jobs) == 2 * 2 * 2
    # examples outermost, then scales, then variants
    assert [j.id for j in jobs[:4]] == [
        "selftest:a@0.05:default",
        "selftest:a@0.05:no-prune",
        "selftest:a@0.1:default",
        "selftest:a@0.1:no-prune",
    ]
    assert len({j.id for j in jobs}) == len(jobs)


def test_variant_config_reaches_jobs():
    jobs = expand_jobs(_spec())
    by_id = {j.id: j for j in jobs}
    assert by_id["selftest:a@0.05:no-prune"].config == {"prune": False}
    assert by_id["selftest:a@0.05:default"].config == {}


def test_duplicate_variant_names_are_rejected():
    spec = _spec(variants=(Variant("v"), Variant("v", {"prune": False})))
    with pytest.raises(SpecificationError, match="duplicate job id"):
        expand_jobs(spec)


def test_spec_round_trips_through_canonical_json():
    spec = _spec(policy=RetryPolicy(retries=3, backoff_s=0.1, timeout_s=5.0))
    rebuilt = CampaignSpec.from_dict(spec.to_dict())
    assert rebuilt == spec
    assert canonical_dumps(rebuilt.to_dict()) == canonical_dumps(spec.to_dict())


def test_unknown_kind_and_empty_axes_are_rejected():
    with pytest.raises(SpecificationError, match="unknown campaign kind"):
        _spec(kind="table9")
    with pytest.raises(SpecificationError, match="at least one example"):
        _spec(examples=())
    with pytest.raises(SpecificationError, match="at least one scale"):
        _spec(scales=())


def test_retry_policy_backoff_is_bounded_exponential():
    policy = RetryPolicy(retries=5, backoff_s=1.0, backoff_cap_s=3.0)
    assert policy.delay(2) == 1.0
    assert policy.delay(3) == 2.0
    assert policy.delay(4) == 3.0  # capped
    assert policy.delay(5) == 3.0
    with pytest.raises(SpecificationError):
        RetryPolicy(retries=-1)
    with pytest.raises(SpecificationError):
        RetryPolicy(timeout_s=0.0)


def test_variant_presets_cover_the_kill_switch_matrix():
    assert set(VARIANT_PRESETS) >= {
        "default", "pruned", "no-prune", "no-incremental", "from-scratch"
    }
    v = Variant.preset("from-scratch")
    assert v.config == {"prune": False, "incremental": False}
    with pytest.raises(SpecificationError, match="unknown variant preset"):
        Variant.preset("turbo")


def test_spec_from_flags_uses_presets():
    spec = spec_from_flags(
        "ci", "table2", ["A1TR", "HROST"], [0.05], ["pruned"]
    )
    jobs = expand_jobs(spec)
    assert [j.id for j in jobs] == [
        "table2:A1TR@0.05:pruned",
        "table2:HROST@0.05:pruned",
    ]


def test_job_id_format_is_stable():
    assert job_id("table2", "A1TR", 0.05, "pruned") == "table2:A1TR@0.05:pruned"
    assert job_id("table3", "NGXM", 1.0, "default") == "table3:NGXM@1:default"
