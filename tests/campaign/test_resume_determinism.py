"""Resume determinism: interrupt + resume == uninterrupted, byte for byte."""

from __future__ import annotations

from repro.campaign import CampaignSpec, RetryPolicy, run_campaign
from repro.campaign.checkpoint import CampaignDir
from repro.campaign.grid import job_id


def _spec(inject=None, retries=1, timeout_s=None):
    params = {}
    if inject:
        params["jobs"] = {
            job_id("selftest", ex, 0.05, "default"): {"inject": dict(m)}
            for ex, m in inject.items()
        }
    return CampaignSpec(
        name="determinism",
        kind="selftest",
        examples=("a", "b", "c", "d", "e"),
        scales=(0.05,),
        policy=RetryPolicy(
            retries=retries, backoff_s=0.0, backoff_cap_s=0.0,
            timeout_s=timeout_s,
        ),
        params=params,
    )


def _manifest_bytes(directory):
    return CampaignDir(directory).manifest_path.read_bytes()


def test_interrupted_then_resumed_manifest_is_byte_identical(tmp_path):
    spec = _spec()

    # reference: one uninterrupted run
    ref = run_campaign(tmp_path / "ref", spec=spec)
    assert ref.ok

    # interrupted: stop after 2 terminal records (simulated kill)
    partial = run_campaign(tmp_path / "cut", spec=spec, stop_after=2)
    assert not partial.complete
    assert partial.done == 2
    assert CampaignDir(tmp_path / "cut").load_manifest() is None

    # resume finishes only the remaining jobs
    resumed = run_campaign(tmp_path / "cut", resume=True)
    assert resumed.complete
    assert resumed.skipped == 2
    assert resumed.done == 3

    assert _manifest_bytes(tmp_path / "cut") == _manifest_bytes(
        tmp_path / "ref"
    )


def test_byte_identity_holds_with_a_permanently_failing_job(tmp_path):
    # job "c" errors on every attempt in both runs
    spec = _spec(inject={"c": {"error_attempts": 99}})

    ref = run_campaign(tmp_path / "ref", spec=spec)
    assert ref.complete and ref.failed == 1

    partial = run_campaign(tmp_path / "cut", spec=spec, stop_after=3)
    assert not partial.complete
    resumed = run_campaign(tmp_path / "cut", resume=True)
    assert resumed.complete

    assert _manifest_bytes(tmp_path / "cut") == _manifest_bytes(
        tmp_path / "ref"
    )


def test_resume_on_a_complete_campaign_rewrites_identical_bytes(tmp_path):
    spec = _spec()
    run_campaign(tmp_path / "c", spec=spec)
    before = _manifest_bytes(tmp_path / "c")
    again = run_campaign(tmp_path / "c", resume=True)
    assert again.complete
    assert again.skipped == 5 and again.done == 0
    assert _manifest_bytes(tmp_path / "c") == before


def test_resume_retries_failed_jobs_and_done_supersedes(tmp_path):
    # "b" errors on its first attempt; retries=0 makes that terminal.
    spec = _spec(inject={"b": {"error_attempts": 1}}, retries=0)
    first = run_campaign(tmp_path / "c", spec=spec)
    assert first.complete and first.failed == 1
    jid = job_id("selftest", "b", 0.05, "default")

    # retry_failed=False skips the failed job entirely
    kept = run_campaign(tmp_path / "c", resume=True, retry_failed=False)
    assert kept.complete and kept.skipped == 5 and kept.done == 0
    assert CampaignDir(tmp_path / "c").load_records()[jid]["status"] == "failed"

    # a default resume re-attempts it; with one retry allowed this
    # invocation (policy_override), attempt 2 clears the injection and
    # the done record supersedes the failed one (last record wins)
    resumed = run_campaign(
        tmp_path / "c",
        resume=True,
        policy_override=RetryPolicy(
            retries=1, backoff_s=0.0, backoff_cap_s=0.0
        ),
    )
    assert resumed.ok and resumed.done == 1 and resumed.retried == 1
    records = CampaignDir(tmp_path / "c").load_records()
    assert records[jid]["status"] == "done"
    assert records[jid]["attempts"] == 2
    # the stored spec keeps the original policy (manifest determinism)
    assert CampaignDir(tmp_path / "c").load_spec().policy.retries == 0


def test_resume_after_a_kill_mid_checkpoint_write_is_byte_identical(tmp_path):
    """A kill can land *inside* append_jsonl, leaving a newline-less
    fragment; resume must repair the tail (not fuse it with the next
    record), re-run the chopped job, and still match the reference."""
    spec = _spec()
    ref = run_campaign(tmp_path / "ref", spec=spec)
    assert ref.ok

    partial = run_campaign(tmp_path / "cut", spec=spec, stop_after=2)
    assert not partial.complete
    log = CampaignDir(tmp_path / "cut").log_path
    data = log.read_bytes()
    log.write_bytes(data[:-10])  # chop the 2nd record mid-line

    resumed = run_campaign(tmp_path / "cut", resume=True)
    assert resumed.complete
    # only the first record survived the chop; its job alone is skipped
    assert resumed.skipped == 1 and resumed.done == 4
    assert _manifest_bytes(tmp_path / "cut") == _manifest_bytes(
        tmp_path / "ref"
    )
    # and the repaired log parses clean end to end
    records = CampaignDir(tmp_path / "cut").load_records()
    assert len(records) == 5


def test_policy_override_resume_keeps_failure_bytes_identical(tmp_path):
    """Resuming under a different retry policy must not leak the
    effective timeout/attempt numbers into the manifest's per-job
    error text -- the byte-identity contract covers failed jobs too."""
    spec = _spec(
        inject={"c": {"hang_attempts": 99, "hang_seconds": 30}},
        retries=1, timeout_s=0.3,
    )
    ref = run_campaign(tmp_path / "ref", spec=spec)
    assert ref.complete and ref.failed == 1

    partial = run_campaign(tmp_path / "cut", spec=spec, stop_after=2)
    assert not partial.complete
    resumed = run_campaign(
        tmp_path / "cut", resume=True,
        policy_override=RetryPolicy(
            retries=3, backoff_s=0.0, backoff_cap_s=0.0, timeout_s=0.1
        ),
    )
    assert resumed.complete and resumed.failed == 1

    assert _manifest_bytes(tmp_path / "cut") == _manifest_bytes(
        tmp_path / "ref"
    )
    jid = job_id("selftest", "c", 0.05, "default")
    manifest = CampaignDir(tmp_path / "cut").load_manifest()
    (entry,) = [e for e in manifest["jobs"] if e["id"] == jid]
    # policy-independent by construction: no attempt counts, no budgets
    assert entry["error"] == "attempt exceeded the per-job timeout"
    assert not any(ch.isdigit() for ch in entry["error"])


def test_interrupt_discards_in_flight_work_but_keeps_checkpoints(tmp_path):
    spec = _spec()
    run_campaign(tmp_path / "c", spec=spec, stop_after=1)
    records = CampaignDir(tmp_path / "c").load_records()
    assert len(records) == 1
    (record,) = records.values()
    assert record["status"] == "done"
