"""One real table2 campaign end-to-end (tiny scale, single example)."""

from __future__ import annotations

from repro.campaign import (
    CampaignSpec,
    RetryPolicy,
    Variant,
    run_campaign,
)
from repro.campaign.checkpoint import CampaignDir


def test_table2_campaign_produces_a_real_synthesis_manifest(tmp_path):
    spec = CampaignSpec(
        name="real",
        kind="table2",
        examples=("A1TR",),
        scales=(0.02,),
        variants=(Variant("default"),),
        policy=RetryPolicy(retries=0),
    )
    outcome = run_campaign(tmp_path / "c", spec=spec)
    assert outcome.ok
    (entry,) = outcome.manifest["jobs"]
    assert entry["id"] == "table2:A1TR@0.02:default"
    result = entry["result"]
    assert result["tasks"] > 0
    for side in ("without", "with_reconfig"):
        assert result[side]["feasible"] is True
        assert result[side]["pes"] >= 1
        assert result[side]["cost"] > 0
    # reconfiguration never costs more than the baseline
    assert result["with_reconfig"]["cost"] <= result["without"]["cost"]
    assert result["savings_pct"] >= 0
    # the rendered table carries the paper's column layout
    table = CampaignDir(tmp_path / "c").table_path.read_text()
    assert "Savings %" in table
    assert "table2:A1TR@0.02:default" in table
