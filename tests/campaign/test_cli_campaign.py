"""The ``repro campaign run/resume/status`` CLI surface and exit codes."""

from __future__ import annotations

import json

from repro.cli import main
from repro.io.campaign_json import dump_canonical
from repro.campaign import CampaignSpec, RetryPolicy
from repro.campaign.checkpoint import CampaignDir
from repro.campaign.grid import job_id


def _selftest_spec_file(tmp_path, inject=None, retries=0):
    params = {}
    if inject:
        params["jobs"] = {
            job_id("selftest", ex, 0.05, "default"): {"inject": dict(m)}
            for ex, m in inject.items()
        }
    spec = CampaignSpec(
        name="cli",
        kind="selftest",
        examples=("a", "b", "c"),
        scales=(0.05,),
        policy=RetryPolicy(retries=retries, backoff_s=0.0, backoff_cap_s=0.0),
        params=params,
    )
    path = tmp_path / "spec.json"
    dump_canonical(spec.to_dict(), path)
    return path


def test_run_from_spec_file_exits_zero_when_clean(tmp_path, capsys):
    spec_path = _selftest_spec_file(tmp_path)
    code = main([
        "campaign", "run", str(spec_path), "--dir", str(tmp_path / "c"),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "campaign complete: 3 done, 0 failed" in out
    assert "manifest written to" in out
    assert (tmp_path / "c" / "manifest.json").exists()


def test_run_exits_one_when_jobs_failed(tmp_path, capsys):
    spec_path = _selftest_spec_file(
        tmp_path, inject={"a": {"error_attempts": 99}}
    )
    code = main([
        "campaign", "run", str(spec_path), "--dir", str(tmp_path / "c"),
    ])
    assert code == 1
    assert "1 failed" in capsys.readouterr().out


def test_interrupted_run_exits_three_then_resume_completes(tmp_path, capsys):
    spec_path = _selftest_spec_file(tmp_path)
    code = main([
        "campaign", "run", str(spec_path),
        "--dir", str(tmp_path / "c"), "--stop-after", "1",
    ])
    assert code == 3
    assert "INTERRUPTED" in capsys.readouterr().out

    code = main(["campaign", "status", str(tmp_path / "c")])
    assert code == 3
    out = capsys.readouterr().out
    assert "3 jobs, 1 done, 0 failed, 2 pending" in out
    assert "pending selftest:" in out

    code = main(["campaign", "resume", str(tmp_path / "c")])
    assert code == 0
    assert "campaign complete" in capsys.readouterr().out

    code = main(["campaign", "status", str(tmp_path / "c")])
    assert code == 0
    assert "[complete]" in capsys.readouterr().out


def test_status_lists_failed_jobs_with_error_summaries(tmp_path, capsys):
    spec_path = _selftest_spec_file(
        tmp_path, inject={"b": {"error_attempts": 99}}
    )
    main(["campaign", "run", str(spec_path), "--dir", str(tmp_path / "c")])
    capsys.readouterr()
    code = main(["campaign", "status", str(tmp_path / "c")])
    assert code == 1  # complete with failed jobs: mirror run/resume
    out = capsys.readouterr().out
    assert "FAILED selftest:b@0.05:default: RuntimeError" in out


def test_status_exit_code_agrees_with_the_run_that_produced_it(tmp_path, capsys):
    """A poller scripting ``status`` must see the same verdict ``run``
    reported: 1 for complete-with-failures, 0 only when clean."""
    spec_path = _selftest_spec_file(
        tmp_path, inject={"b": {"error_attempts": 99}}
    )
    run_code = main([
        "campaign", "run", str(spec_path), "--dir", str(tmp_path / "c"),
    ])
    capsys.readouterr()
    status_code = main(["campaign", "status", str(tmp_path / "c")])
    assert run_code == status_code == 1


def test_resume_keep_failed_skips_failed_jobs(tmp_path, capsys):
    spec_path = _selftest_spec_file(
        tmp_path, inject={"b": {"error_attempts": 99}}
    )
    main(["campaign", "run", str(spec_path), "--dir", str(tmp_path / "c")])
    capsys.readouterr()
    code = main(["campaign", "resume", str(tmp_path / "c"), "--keep-failed"])
    assert code == 1
    assert "3 skipped" in capsys.readouterr().out


def test_flag_built_campaign_without_examples_is_an_error(tmp_path, capsys):
    code = main(["campaign", "run", "--dir", str(tmp_path / "c")])
    assert code == 2
    assert "need a spec file or --examples" in capsys.readouterr().err


def test_flag_built_selftest_campaign_runs(tmp_path, capsys):
    code = main([
        "campaign", "run", "--dir", str(tmp_path / "c"),
        "--kind", "selftest", "--examples", "x", "y",
        "--scales", "0.05", "--variants", "default", "no-prune",
        "--workers", "2",
    ])
    assert code == 0
    spec = CampaignDir(tmp_path / "c").load_spec()
    assert spec.name == "c"  # defaults to the directory basename
    assert spec.examples == ("x", "y")
    assert [v.name for v in spec.variants] == ["default", "no-prune"]
    manifest = json.loads(
        (tmp_path / "c" / "manifest.json").read_text()
    )
    assert manifest["summary"] == {"jobs": 4, "done": 4, "failed": 0}


def test_run_flags_override_the_spec_policy(tmp_path):
    spec_path = _selftest_spec_file(tmp_path)
    main([
        "campaign", "run", str(spec_path), "--dir", str(tmp_path / "c"),
        "--retries", "5", "--timeout", "9.5",
    ])
    stored = CampaignDir(tmp_path / "c").load_spec()
    assert stored.policy.retries == 5
    assert stored.policy.timeout_s == 9.5
