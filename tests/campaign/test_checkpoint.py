"""Checkpoint durability contracts: JSONL log, canonical JSON, spec lock."""

from __future__ import annotations

import json

import pytest

from repro.errors import SpecificationError
from repro.io.campaign_json import canonical_dumps, dump_canonical, read_jsonl
from repro.campaign import CampaignSpec, RetryPolicy
from repro.campaign.checkpoint import CampaignDir


def _spec(name="t", retries=2):
    return CampaignSpec(
        name=name,
        kind="selftest",
        examples=("a",),
        scales=(0.05,),
        policy=RetryPolicy(retries=retries),
    )


def test_canonical_dumps_is_stable_bytes():
    a = canonical_dumps({"b": 1, "a": [2, 3]})
    b = canonical_dumps({"a": [2, 3], "b": 1})
    assert a == b
    assert a.endswith("\n")
    # key order and formatting are pinned so equality means byte-equality
    assert a == '{\n  "a": [\n    2,\n    3\n  ],\n  "b": 1\n}\n'


def test_dump_canonical_is_atomic_no_tmp_left_behind(tmp_path):
    target = tmp_path / "m.json"
    dump_canonical({"x": 1}, target)
    dump_canonical({"x": 2}, target)  # overwrite via replace
    assert json.loads(target.read_text()) == {"x": 2}
    leftovers = [p for p in tmp_path.iterdir() if p != target]
    assert leftovers == []


def test_read_jsonl_tolerates_a_trailing_partial_line(tmp_path):
    log = tmp_path / "jobs.jsonl"
    log.write_text('{"job": "a", "status": "done"}\n{"job": "b", "sta')
    records = read_jsonl(log)
    assert [r["job"] for r in records] == ["a"]


def test_read_jsonl_rejects_corruption_before_the_tail(tmp_path):
    log = tmp_path / "jobs.jsonl"
    log.write_text('not json at all\n{"job": "a", "status": "done"}\n')
    with pytest.raises(ValueError, match="corrupt"):
        read_jsonl(log)


def test_last_record_per_job_wins(tmp_path):
    cdir = CampaignDir(tmp_path / "c")
    cdir.write_spec(_spec())
    cdir.append_record({"job": "j1", "status": "failed", "error": "boom"})
    cdir.append_record({"job": "j2", "status": "done", "result": {"n": 1}})
    cdir.append_record({"job": "j1", "status": "done", "result": {"n": 2}})
    cdir.close()
    records = cdir.load_records()
    assert records["j1"]["status"] == "done"
    assert records["j1"]["result"] == {"n": 2}
    assert records["j2"]["status"] == "done"


def test_append_after_a_mid_write_kill_repairs_the_partial_tail(tmp_path):
    cdir = CampaignDir(tmp_path / "c")
    cdir.write_spec(_spec())
    cdir.append_record({"job": "j1", "status": "done"})
    cdir.close()
    # a kill mid-write leaves a newline-less fragment at the tail;
    # appending straight after it would fuse fragment and record into
    # one malformed line that read_jsonl rejects as corruption
    with open(cdir.log_path, "a") as fh:
        fh.write('{"job": "j2", "sta')
    resumed = CampaignDir(tmp_path / "c")
    resumed.append_record({"job": "j3", "status": "done"})
    resumed.close()
    assert [r["job"] for r in read_jsonl(resumed.log_path)] == ["j1", "j3"]
    assert set(resumed.load_records()) == {"j1", "j3"}


def test_partial_tail_repair_when_the_fragment_is_the_whole_log(tmp_path):
    cdir = CampaignDir(tmp_path / "c")
    cdir.write_spec(_spec())
    cdir.log_path.write_text('{"job": "j1", "sta')  # no complete line at all
    cdir.append_record({"job": "j2", "status": "done"})
    cdir.close()
    assert [r["job"] for r in read_jsonl(cdir.log_path)] == ["j2"]


def test_append_record_refuses_non_terminal_statuses(tmp_path):
    cdir = CampaignDir(tmp_path / "c")
    cdir.write_spec(_spec())
    with pytest.raises(ValueError, match="terminal"):
        cdir.append_record({"job": "j1", "status": "running"})
    cdir.close()


def test_records_carry_the_schema_version(tmp_path):
    cdir = CampaignDir(tmp_path / "c")
    cdir.write_spec(_spec())
    cdir.append_record({"job": "j1", "status": "done"})
    cdir.close()
    lines = cdir.log_path.read_text().splitlines()
    assert json.loads(lines[0])["v"] == 1


def test_write_spec_refuses_a_different_spec(tmp_path):
    cdir = CampaignDir(tmp_path / "c")
    cdir.write_spec(_spec(name="one"))
    # same spec again is fine (resume path)
    cdir.write_spec(_spec(name="one"))
    with pytest.raises(SpecificationError, match="different campaign"):
        cdir.write_spec(_spec(name="two"))


def test_load_spec_round_trips(tmp_path):
    cdir = CampaignDir(tmp_path / "c")
    spec = _spec(retries=5)
    cdir.write_spec(spec)
    assert cdir.load_spec() == spec


def test_load_spec_requires_a_campaign_directory(tmp_path):
    with pytest.raises(SpecificationError, match="not a campaign directory"):
        CampaignDir(tmp_path / "nowhere").load_spec()


def test_manifest_round_trips_and_is_optional(tmp_path):
    cdir = CampaignDir(tmp_path / "c")
    cdir.write_spec(_spec())
    assert cdir.load_manifest() is None
    manifest = {"summary": {"jobs": 1, "done": 1, "failed": 0}}
    cdir.write_manifest(manifest)
    assert cdir.load_manifest() == manifest
