"""Fault-tolerance paths: crash retry, retry exhaustion, timeouts.

All tests use synthesis-free ``selftest`` jobs with the fault
injection hook in :mod:`repro.campaign.jobs`, so each run takes
milliseconds; injection runs inside a worker subprocess, so an
injected ``os._exit`` can never take the test process down.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import MemorySink, Tracer
from repro.campaign import CampaignSpec, RetryPolicy, run_campaign
from repro.campaign.checkpoint import CampaignDir
from repro.campaign.grid import job_id

FAST = dict(backoff_s=0.0, backoff_cap_s=0.0)


def _spec(examples, inject=None, retries=2, timeout_s=None, name="faults"):
    """A selftest campaign over ``examples``; ``inject`` keys by example."""
    params = {}
    if inject:
        params["jobs"] = {
            job_id("selftest", ex, 0.05, "default"): {"inject": dict(m)}
            for ex, m in inject.items()
        }
    return CampaignSpec(
        name=name,
        kind="selftest",
        examples=tuple(examples),
        scales=(0.05,),
        policy=RetryPolicy(retries=retries, timeout_s=timeout_s, **FAST),
        params=params,
    )


def _run(tmp_path, spec, **kwargs):
    sink = MemorySink()
    tracer = Tracer(sinks=[sink])
    outcome = run_campaign(
        tmp_path / "c", spec=spec, tracer=tracer, **kwargs
    )
    return outcome, tracer, sink


def test_clean_campaign_completes_and_writes_manifest(tmp_path):
    outcome, tracer, _ = _run(tmp_path, _spec(["a", "b", "c"]))
    assert outcome.ok
    assert (outcome.done, outcome.failed, outcome.retried) == (3, 0, 0)
    assert tracer.counters.get("campaign.jobs.done") == 3
    cdir = CampaignDir(tmp_path / "c")
    manifest = cdir.load_manifest()
    assert manifest["summary"] == {"jobs": 3, "done": 3, "failed": 0}
    assert cdir.table_path.exists()


def test_worker_crash_retries_then_succeeds(tmp_path):
    spec = _spec(["a", "b"], inject={"a": {"crash_attempts": 1}})
    outcome, tracer, sink = _run(tmp_path, spec, workers=2)
    assert outcome.ok
    assert outcome.done == 2
    assert outcome.retried == 1
    assert tracer.counters.get("campaign.jobs.retried") == 1
    (retry,) = sink.named("campaign.job.retry")
    assert retry.fields["reason"] == "crash"
    # the crashed job's done record shows it took two attempts
    records = CampaignDir(tmp_path / "c").load_records()
    jid = job_id("selftest", "a", 0.05, "default")
    assert records[jid]["status"] == "done"
    assert records[jid]["attempts"] == 2


def test_retry_exhaustion_degrades_to_a_failed_record(tmp_path):
    spec = _spec(
        ["a", "b"], inject={"a": {"error_attempts": 99}}, retries=1
    )
    outcome, tracer, sink = _run(tmp_path, spec)
    # graceful degradation: campaign completes, one job is failed
    assert outcome.complete and not outcome.ok
    assert (outcome.done, outcome.failed, outcome.retried) == (1, 1, 1)
    assert tracer.counters.get("campaign.jobs.failed") == 1
    jid = job_id("selftest", "a", 0.05, "default")
    record = CampaignDir(tmp_path / "c").load_records()[jid]
    assert record["status"] == "failed"
    assert record["attempts"] == 2  # retries=1 -> two attempts
    assert record["reason"] == "error"
    assert "injected failure" in record["traceback"]
    assert "RuntimeError" in record["error"]
    # the manifest keeps only the one-line summary, not the traceback
    entry = [
        e for e in outcome.manifest["jobs"] if e["id"] == jid
    ][0]
    assert entry["status"] == "failed"
    assert "injected failure" in entry["error"]
    assert "Traceback" not in entry["error"]


def test_permanent_crash_degrades_without_killing_the_campaign(tmp_path):
    spec = _spec(
        ["a", "b", "c"], inject={"b": {"crash_attempts": 99}}, retries=1
    )
    outcome, _, _ = _run(tmp_path, spec)
    assert outcome.complete and outcome.failed == 1 and outcome.done == 2
    jid = job_id("selftest", "b", 0.05, "default")
    assert outcome.manifest and any(
        e["id"] == jid and e["status"] == "failed"
        for e in outcome.manifest["jobs"]
    )


def test_hung_job_times_out_and_recovers(tmp_path):
    spec = _spec(
        ["a", "b"],
        inject={"a": {"hang_attempts": 1, "hang_seconds": 30}},
        timeout_s=0.4,
    )
    outcome, _, sink = _run(tmp_path, spec)
    assert outcome.ok
    assert outcome.retried == 1
    (retry,) = sink.named("campaign.job.retry")
    assert retry.fields["reason"] == "timeout"


def test_events_stream_to_the_campaign_directory_by_default(tmp_path):
    run_campaign(tmp_path / "c", spec=_spec(["a"]))
    events_path = CampaignDir(tmp_path / "c").events_path
    names = [
        json.loads(line)["event"]
        for line in events_path.read_text().splitlines()
    ]
    assert names[0] == "campaign.start"
    assert names[-1] == "campaign.end"
    assert "campaign.job.done" in names


def test_done_records_carry_wall_time_but_results_do_not(tmp_path):
    outcome, _, _ = _run(tmp_path, _spec(["a"]))
    jid = job_id("selftest", "a", 0.05, "default")
    record = CampaignDir(tmp_path / "c").load_records()[jid]
    assert "wall_s" in record
    assert "wall_s" not in record["result"]
    assert "wall_s" not in json.dumps(outcome.manifest)
