"""Shared fixtures for the CRUSADE reproduction test suite."""

from __future__ import annotations

import pytest

from repro import (
    CrusadeConfig,
    GeneratorConfig,
    SystemSpec,
    Task,
    TaskGraph,
    default_library,
    generate_spec,
)
from repro.resources import LinkType, MemoryBank, PEKind, PpeType, ProcessorType
from repro.resources.library import ResourceLibrary
from repro.units import MB


@pytest.fixture
def library():
    """The full 1997 default catalog."""
    return default_library()


@pytest.fixture
def small_library():
    """A minimal deterministic library: one CPU, one FPGA, one bus."""
    lib = ResourceLibrary()
    lib.add_pe_type(
        ProcessorType(
            name="CPU",
            cost=50.0,
            speed=1.0,
            memory_banks=(MemoryBank(16 * MB, 20.0), MemoryBank(64 * MB, 60.0)),
            context_switch_time=10e-6,
            preemption_overhead=30e-6,
        )
    )
    lib.add_pe_type(
        PpeType(
            name="FPGA",
            cost=100.0,
            device_kind=PEKind.FPGA,
            pfus=200,
            flip_flops=200,
            pins=64,
            config_bits_per_pfu=100,
        )
    )
    lib.add_link_type(
        LinkType(
            name="bus",
            cost=5.0,
            max_ports=8,
            access_times=tuple(1e-6 * (i + 1) for i in range(8)),
            bytes_per_packet=64,
            packet_tx_time=2e-6,
        )
    )
    return lib


@pytest.fixture
def chain_graph():
    """A three-task software chain with a 10 ms period."""
    g = TaskGraph(name="chain", period=0.01, deadline=0.008)
    for name in ("a", "b", "c"):
        g.add_task(
            Task(
                name=name,
                exec_times={"CPU": 0.0005},
                memory=_mem(),
            )
        )
    g.add_edge("a", "b", bytes_=128)
    g.add_edge("b", "c", bytes_=128)
    return g


def _mem():
    from repro.graph.task import MemoryRequirement

    return MemoryRequirement(program=4096, data=2048, stack=512)


@pytest.fixture
def hw_pair_spec():
    """Two compatible single-task hardware graphs sharing a period."""
    def mk(name, est):
        # 600 gates each: the pair fits one mode (1200 <= 1400 cap),
        # so the baseline shares a single configuration while the
        # reconfiguration flow still prefers two time-shared modes.
        g = TaskGraph(name=name, period=1.0, deadline=0.5, est=est)
        g.add_task(
            Task(name=name + ".t", exec_times={"FPGA": 0.001}, area_gates=600, pins=10)
        )
        return g

    return SystemSpec(
        "pair",
        [mk("ga", 0.0), mk("gb", 0.5)],
        compatibility=[("ga", "gb")],
        boot_time_requirement=0.2,
    )


@pytest.fixture
def tiny_spec(chain_graph):
    """A one-graph system for scheduler/driver smoke tests."""
    return SystemSpec("tiny", [chain_graph])


@pytest.fixture
def synthetic_spec():
    """A deterministic 4-graph generated system with compatibility."""
    return generate_spec(
        GeneratorConfig(
            seed=11,
            n_graphs=4,
            tasks_per_graph=10,
            compat_group_size=2,
            utilization=0.2,
        )
    )


@pytest.fixture
def fast_config():
    """CRUSADE config tuned for test speed."""
    return CrusadeConfig(max_explicit_copies=2, max_existing_options=6)
