"""Unit-convention helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_lcm_of_basic():
    assert units.lcm_of([4, 6]) == 12
    assert units.lcm_of([1]) == 1
    assert units.lcm_of([7, 5, 3]) == 105


def test_lcm_of_rejects_non_positive():
    with pytest.raises(ValueError):
        units.lcm_of([0, 3])
    with pytest.raises(ValueError):
        units.lcm_of([-2])


@given(st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=6))
def test_lcm_is_divisible_by_members(values):
    result = units.lcm_of(values)
    for value in values:
        assert result % value == 0


def test_quantize_rounds_to_grid():
    assert units.quantize(25e-6) == 25
    assert units.quantize(1.0, tick=1e-3) == 1000
    assert units.quantize(0.4e-6) == 1  # clamped to at least one tick


def test_quantize_rejects_non_positive():
    with pytest.raises(ValueError):
        units.quantize(0.0)
    with pytest.raises(ValueError):
        units.quantize(-1.0)


def test_time_comparisons_tolerate_epsilon():
    base = 1.0
    almost = base + units.TIME_EPS / 2
    assert units.time_leq(almost, base)
    assert not units.time_lt(almost, base)
    assert units.time_eq(almost, base)
    assert units.time_lt(base, base + 1.0)


def test_fit_to_lambda():
    assert units.fit_to_lambda(1e9) == pytest.approx(1.0)
    assert units.fit_to_lambda(500.0) == pytest.approx(5e-7)
    with pytest.raises(ValueError):
        units.fit_to_lambda(-1.0)


def test_unavailability_to_fraction():
    year_minutes = 365.25 * 24 * 60
    assert units.unavailability_to_fraction(year_minutes) == pytest.approx(1.0)
    assert units.unavailability_to_fraction(0.0) == 0.0
    with pytest.raises(ValueError):
        units.unavailability_to_fraction(-5.0)


@given(st.floats(min_value=1e-6, max_value=1e3))
def test_quantize_roundtrip_error_bounded(seconds):
    ticks = units.quantize(seconds)
    assert abs(ticks * units.US - seconds) <= max(units.US / 2, seconds * 1e-9) or ticks == 1
