"""Property tests: tracing observes synthesis without perturbing it.

Three oracles, fuzzed over generated workloads:

1. **Timing** -- every phase total is non-negative and the exclusive
   phase totals sum to at most the run's wall time.
2. **Counter consistency** -- the merge loop's accepts plus all
   rejects equals its candidates; every allocation evaluation runs
   exactly one schedule; scheduled-task counters are populated.
3. **Determinism** -- an enabled tracer leaves the synthesis result
   byte-identical to a disabled one, and the counters themselves are
   reproducible run-to-run.
"""

import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CrusadeConfig, GeneratorConfig, MemorySink, Tracer, crusade, generate_spec
from repro.io.result_json import result_to_dict

PROPERTY_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_spec(seed):
    return generate_spec(GeneratorConfig(
        seed=seed, n_graphs=2, tasks_per_graph=5, compat_group_size=2,
        utilization=0.2, hw_only_fraction=0.35, mixed_fraction=0.15,
    ))


def traced_run(seed, reconfig=True):
    sink = MemorySink()
    tracer = Tracer(sinks=[sink])
    config = CrusadeConfig(reconfiguration=reconfig, max_explicit_copies=2)
    result = crusade(make_spec(seed), config=config, tracer=tracer)
    return result, tracer, sink


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=60), reconfig=st.booleans())
def test_phase_timers_bounded_by_wall_time(seed, reconfig):
    result, _, _ = traced_run(seed, reconfig)
    stats = result.stats
    assert stats is not None
    assert all(v >= 0.0 for v in stats.phase_seconds.values())
    assert stats.phase_total() <= stats.total_seconds
    # The pipeline always runs these phases.
    for phase in ("preprocess", "allocation", "full_check"):
        assert phase in stats.phase_seconds


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=60))
def test_merge_counters_consistent(seed):
    result, _, sink = traced_run(seed, reconfig=True)
    stats = result.stats
    accepts = stats.counter("merge.accepts")
    rejects = stats.counter_total("merge.rejects.")
    assert accepts + rejects == stats.counter("merge.candidates")
    # Every accept/reject also emitted a structured event.
    assert len(sink.named("merge.accept")) == accepts
    assert len(sink.named("merge.reject")) == rejects


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=60), reconfig=st.booleans())
def test_scheduler_and_allocation_counters_consistent(seed, reconfig):
    result, _, _ = traced_run(seed, reconfig)
    stats = result.stats
    # With the incremental engine (the default), every scheduler run
    # builds exactly one cached fragment, and every evaluation is
    # served from fragments (hits + misses cover every component of
    # every evaluation -- at least one per evaluation).
    assert stats.counter("sched.runs") == stats.counter("perf.schedule.misses")
    assert stats.counter("perf.schedule.hits") + stats.counter(
        "perf.schedule.misses"
    ) >= stats.counter("alloc.evaluations")
    assert stats.counter("sched.runs") > 0
    assert stats.counter("sched.tasks.real") + stats.counter("sched.tasks.virtual") > 0
    # Each considered option either failed to apply, was judged
    # infeasible, or won its cluster -- so infeasible + failures can
    # never exceed the considered count.
    considered = stats.counter("alloc.options.considered")
    assert stats.counter("alloc.options.infeasible") + stats.counter(
        "alloc.options.apply_failed"
    ) <= considered
    # Reconfiguration runs allocate the cluster set again for the
    # single-mode baseline (the recursive crusade call shares the
    # tracer), so the counter is a whole multiple of the cluster count.
    n_clusters = len(result.clustering.clusters)
    counted = stats.counter("alloc.clusters")
    if reconfig:
        assert counted >= n_clusters
        assert counted % n_clusters == 0
    else:
        assert counted == n_clusters


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=60), reconfig=st.booleans())
def test_enabled_tracer_never_changes_the_result(seed, reconfig):
    config = CrusadeConfig(reconfiguration=reconfig, max_explicit_copies=2)
    plain = result_to_dict(crusade(make_spec(seed), config=config))
    traced = result_to_dict(
        crusade(make_spec(seed), config=config, tracer=Tracer())
    )
    plain.pop("cpu_seconds")
    traced.pop("cpu_seconds")
    stats = traced.pop("stats")
    assert stats["counters"]
    assert "stats" not in plain  # untraced exports keep the old shape
    assert json.dumps(plain, sort_keys=True) == json.dumps(traced, sort_keys=True)


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=60))
def test_counters_are_deterministic(seed):
    a = traced_run(seed)[1].counters.as_dict()
    b = traced_run(seed)[1].counters.as_dict()
    assert a == b


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=60), reconfig=st.booleans())
def test_from_scratch_schedules_once_per_evaluation(seed, reconfig):
    """The pre-engine invariant still holds with the engine off."""
    tracer = Tracer()
    config = CrusadeConfig(
        reconfiguration=reconfig, max_explicit_copies=2, incremental=False
    )
    result = crusade(make_spec(seed), config=config, tracer=tracer)
    stats = result.stats
    assert stats.counter("alloc.evaluations") == stats.counter("sched.runs")
    assert stats.counter("perf.schedule.hits") == 0
    assert stats.counter("perf.schedule.misses") == 0
