"""Unit tests for the observability primitives (repro.obs)."""

import io
import json

import pytest

from repro.obs import (
    NULL_TRACER,
    SCHEMA_VERSION,
    Counters,
    Event,
    JsonlSink,
    MemorySink,
    PhaseTimers,
    SynthesisStats,
    Tracer,
    render_stats,
    resolve_tracer,
    stats_from_dict,
)
from repro.obs.events import ENVELOPE_KEYS


class TestCounters:
    def test_incr_and_get(self):
        c = Counters()
        assert c.get("x") == 0
        c.incr("x")
        c.incr("x", 4)
        assert c.get("x") == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counters().incr("x", -1)

    def test_prefix_total(self):
        c = Counters()
        c.incr("merge.rejects.cost", 2)
        c.incr("merge.rejects.deadline", 3)
        c.incr("merge.accepts", 1)
        assert c.total("merge.rejects.") == 5
        assert c.total("merge.") == 6

    def test_as_dict_sorted_and_merge(self):
        a, b = Counters(), Counters()
        a.incr("z", 1)
        a.incr("a", 2)
        b.incr("z", 3)
        a.merge(b)
        assert list(a.as_dict()) == ["a", "z"]
        assert a.get("z") == 4
        assert len(a) == 2


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestPhaseTimers:
    def test_simple_phase(self):
        clock = FakeClock()
        t = PhaseTimers(clock=clock)
        t.start("alloc")
        clock.now = 2.0
        assert t.stop() == ("alloc", 2.0)
        assert t.as_dict() == {"alloc": 2.0}

    def test_nested_phases_account_exclusively(self):
        clock = FakeClock()
        t = PhaseTimers(clock=clock)
        t.start("outer")
        clock.now = 1.0
        t.start("inner")
        clock.now = 4.0
        t.stop()
        clock.now = 6.0
        t.stop()
        # outer ran 0-1 and 4-6 (3s); inner ran 1-4 (3s); total == wall.
        assert t.as_dict() == {"outer": 3.0, "inner": 3.0}
        assert t.grand_total() == 6.0

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            PhaseTimers().stop()

    def test_depth(self):
        t = PhaseTimers(clock=FakeClock())
        assert t.depth == 0
        t.start("a")
        assert t.depth == 1
        t.stop()
        assert t.depth == 0


class TestEvent:
    def test_envelope_round_trip(self):
        evt = Event(name="merge.accept", seq=7, t=1.5, fields={"host": "pe0"})
        payload = evt.to_dict()
        assert payload["v"] == SCHEMA_VERSION
        assert tuple(payload) == ENVELOPE_KEYS
        assert Event.from_dict(payload) == evt


class TestTracer:
    def test_events_reach_every_sink(self):
        a, b = MemorySink(), MemorySink()
        tracer = Tracer(sinks=[a, b])
        tracer.event("x", value=1)
        tracer.event("y")
        assert [e.name for e in a.events] == ["x", "y"]
        assert [e.name for e in b.events] == ["x", "y"]
        assert [e.seq for e in a.events] == [0, 1]
        assert a.named("x")[0].fields == {"value": 1}
        assert tracer.n_events == 2

    def test_phase_emits_start_end_and_times(self):
        clock = FakeClock()
        sink = MemorySink()
        tracer = Tracer(sinks=[sink], clock=clock)
        with tracer.phase("alloc"):
            clock.now = 3.0
        names = [e.name for e in sink.events]
        assert names == ["phase.start", "phase.end"]
        assert sink.events[1].fields == {"phase": "alloc", "seconds": 3.0}
        assert tracer.timers.as_dict() == {"alloc": 3.0}

    def test_stats_snapshot(self):
        tracer = Tracer()
        tracer.incr("a.b", 2)
        stats = tracer.stats(total_seconds=1.0)
        assert stats.counters == {"a.b": 2}
        assert stats.total_seconds == 1.0

    def test_jsonl_sink_writes_parseable_lines(self):
        buf = io.StringIO()
        tracer = Tracer(sinks=[JsonlSink(buf)])
        tracer.event("one", k=1)
        tracer.event("two")
        tracer.close()
        lines = buf.getvalue().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "one"
        assert first["fields"] == {"k": 1}

    def test_jsonl_sink_file_path(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(sinks=[JsonlSink(path)])
        tracer.event("hello")
        tracer.close()
        assert json.loads(path.read_text())["event"] == "hello"


class TestNullTracer:
    def test_is_inert(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.incr("anything", 5)
        NULL_TRACER.event("anything", x=1)
        with NULL_TRACER.phase("anything"):
            pass
        NULL_TRACER.close()
        assert NULL_TRACER.counters.as_dict() == {}
        assert NULL_TRACER.n_events == 0

    def test_stats_refused(self):
        with pytest.raises(RuntimeError):
            NULL_TRACER.stats()

    def test_resolve(self):
        assert resolve_tracer(None) is NULL_TRACER
        t = Tracer()
        assert resolve_tracer(t) is t


class TestSynthesisStats:
    def test_round_trip(self):
        stats = SynthesisStats(
            phase_seconds={"alloc": 1.5, "merge": 0.5},
            counters={"merge.accepts": 3},
            n_events=11,
            total_seconds=2.5,
        )
        again = stats_from_dict(stats.to_dict())
        assert again == stats
        assert again.phase_total() == 2.0
        assert again.counter("merge.accepts") == 3
        assert again.counter("missing") == 0
        assert again.counter_total("merge.") == 3

    def test_render(self):
        stats = SynthesisStats(
            phase_seconds={"alloc": 1.0},
            counters={"sched.runs": 2},
            n_events=4,
            total_seconds=1.2,
        )
        text = render_stats(stats)
        assert "alloc" in text
        assert "sched.runs" in text
        assert "total (wall)" in text
        assert "events emitted: 4" in text

    def test_render_empty(self):
        text = render_stats(SynthesisStats())
        assert "(none recorded)" in text
        assert "pipeline stages" not in text

    def test_render_stage_table(self):
        """Stages appear in canonical pipeline order with run/skip
        counts; unreached stages are omitted, unphased ones show no
        time."""
        stats = SynthesisStats(
            phase_seconds={"allocation": 3.0, "preprocess": 1.0},
            counters={
                "stage.preprocess.runs": 1,
                "stage.allocation.runs": 1,
                "stage.merge.skipped": 1,
                "stage.finalize.runs": 1,
            },
            total_seconds=4.5,
        )
        text = render_stats(stats)
        assert "pipeline stages" in text
        lines = [
            l for l in text.splitlines()
            if l.startswith("    ") and "run" in l and "skip" in l
        ]
        names = [l.split()[0] for l in lines]
        assert names == ["preprocess", "allocation", "merge", "finalize"]
        alloc_row = lines[names.index("allocation")]
        assert "75.0%" in alloc_row
        merge_row = lines[names.index("merge")]
        assert " 1 skip" in merge_row and "%" not in merge_row
