"""CLI commands and Gantt rendering."""

import json

import pytest

from repro import CrusadeConfig, GeneratorConfig, crusade, generate_spec
from repro.cli import main
from repro.io.spec_json import save_spec_file
from repro.sched.gantt import render_gantt, utilization_summary


@pytest.fixture()
def spec_file(tmp_path):
    spec = generate_spec(GeneratorConfig(
        seed=5, n_graphs=3, tasks_per_graph=6, compat_group_size=2,
        utilization=0.2,
    ))
    path = tmp_path / "spec.json"
    save_spec_file(spec, path)
    return path


class TestCli:
    def test_generate(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        code = main([
            "generate", "--seed", "3", "--graphs", "2",
            "--tasks-per-graph", "5", "--out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["format"] == "crusade-spec"
        assert len(payload["graphs"]) == 2

    def test_example(self, tmp_path):
        out = tmp_path / "e.json"
        code = main(["example", "A1TR", "--scale", "0.05", "--out", str(out)])
        assert code == 0
        assert json.loads(out.read_text())["name"] == "A1TR"

    def test_synthesize(self, spec_file, tmp_path, capsys):
        out = tmp_path / "r.json"
        code = main([
            "synthesize", str(spec_file), "--copies", "2",
            "--out", str(out), "--gantt",
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "Processing elements" in captured
        assert "feasible: True" in captured
        assert json.loads(out.read_text())["feasible"] is True

    def test_synthesize_baseline(self, spec_file, capsys):
        code = main(["synthesize", str(spec_file), "--no-reconfig", "--copies", "2"])
        assert code == 0

    def test_synthesize_no_prune(self, spec_file, capsys):
        code = main([
            "synthesize", str(spec_file), "--copies", "2", "--no-prune",
        ])
        assert code == 0
        assert "feasible: True" in capsys.readouterr().out

    def test_synthesize_profile(self, spec_file, tmp_path, capsys):
        out = tmp_path / "r.json"
        code = main([
            "synthesize", str(spec_file), "--copies", "2",
            "--profile", "5", "--out", str(out),
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "cumulative" in captured
        assert "profile written to" in captured
        dumps = list(tmp_path.glob("profile-*.pstats"))
        assert len(dumps) == 1

    def test_profile_paths_distinct_per_spec(self, spec_file, tmp_path):
        """Two specs profiled into one directory must not collide."""
        from repro.cli import _profile_path
        from repro.io.spec_json import load_spec_file
        from repro.graph.generator import GeneratorConfig, generate_spec

        class Args:
            out = str(tmp_path / "r.json")

        spec_a = load_spec_file(str(spec_file))
        spec_b = generate_spec(GeneratorConfig(seed=7, n_graphs=2,
                                               tasks_per_graph=4))
        path_a = _profile_path(Args, spec_a)
        path_b = _profile_path(Args, spec_b)
        assert path_a != path_b
        assert _profile_path(Args, spec_a) == path_a

    def test_synthesize_parallel_eval_accepts_auto(self, spec_file, capsys):
        code = main([
            "synthesize", str(spec_file), "--copies", "2",
            "--parallel-eval", "auto",
        ])
        assert code == 0

    def test_synthesize_ft(self, spec_file, capsys):
        code = main(["synthesize", str(spec_file), "--ft", "--copies", "2"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "spares:" in captured

    def test_synthesize_stats(self, spec_file, capsys):
        code = main(["synthesize", str(spec_file), "--copies", "2", "--stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Synthesis statistics:" in out
        for phase in ("preprocess", "allocation", "full_check"):
            assert phase in out
        assert "sched.runs" in out
        assert "events emitted:" in out

    def test_synthesize_trace(self, spec_file, tmp_path, capsys):
        from repro.obs.events import ENVELOPE_KEYS, SCHEMA_VERSION

        trace = tmp_path / "trace.jsonl"
        code = main([
            "synthesize", str(spec_file), "--copies", "2",
            "--trace", str(trace),
        ])
        assert code == 0
        assert "trace written to" in capsys.readouterr().out
        lines = trace.read_text().strip().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        for event in events:
            assert tuple(event) == ENVELOPE_KEYS
            assert event["v"] == SCHEMA_VERSION
        names = [e["event"] for e in events]
        assert "phase.start" in names
        assert "phase.end" in names
        assert names[-1] == "synthesis.done"
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_synthesize_ft_stats(self, spec_file, capsys):
        code = main([
            "synthesize", str(spec_file), "--ft", "--copies", "2", "--stats",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "ft_transform" in out
        assert "ft_spares" in out

    def test_stats_block_round_trips_through_result_export(
        self, spec_file, tmp_path, capsys
    ):
        from repro.io import stats_from_result_dict

        out = tmp_path / "r.json"
        code = main([
            "synthesize", str(spec_file), "--copies", "2",
            "--stats", "--out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        stats = stats_from_result_dict(payload)
        assert stats is not None
        assert stats.to_dict() == payload["stats"]
        assert stats.phase_total() <= stats.total_seconds
        # Untraced exports carry no stats block at all.
        plain = tmp_path / "plain.json"
        assert main([
            "synthesize", str(spec_file), "--copies", "2", "--out", str(plain),
        ]) == 0
        plain_payload = json.loads(plain.read_text())
        assert "stats" not in plain_payload
        assert stats_from_result_dict(plain_payload) is None

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Not routable" in capsys.readouterr().out

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "savings" in out


class TestGantt:
    @pytest.fixture(scope="class")
    def result(self):
        spec = generate_spec(GeneratorConfig(
            seed=5, n_graphs=3, tasks_per_graph=6, compat_group_size=2,
            utilization=0.2,
        ))
        return crusade(spec, config=CrusadeConfig(max_explicit_copies=2))

    def test_rows_per_resource(self, result):
        chart = render_gantt(result.schedule, width=60)
        lines = chart.splitlines()
        assert lines[0].startswith("time [")
        resources = {p.pe_id for p in result.schedule.tasks.values() if p.pe_id}
        body = "\n".join(lines[1:])
        for resource in resources:
            assert resource in body

    def test_execution_marks_present(self, result):
        chart = render_gantt(result.schedule, width=60)
        assert "#" in chart

    def test_width_enforced(self, result):
        with pytest.raises(ValueError):
            render_gantt(result.schedule, width=3)
        chart = render_gantt(result.schedule, width=40)
        for line in chart.splitlines()[1:]:
            bar = line.split("|")[1]
            assert len(bar) == 40

    def test_custom_span(self, result):
        chart = render_gantt(result.schedule, width=40, span=(0.0, 0.001))
        assert "0.001000s" in chart

    def test_all_copies(self, result):
        chart = render_gantt(result.schedule, width=40, copy=None)
        assert "#" in chart

    def test_empty_schedule(self):
        from repro.sched.scheduler import Schedule

        assert render_gantt(Schedule()) == "(empty schedule)"

    def test_utilization_summary(self, result):
        from repro import hyperperiod_of

        text = utilization_summary(
            result.schedule, hyperperiod_of(result.spec)
        )
        assert "%" in text
        assert "resource utilization" in text
