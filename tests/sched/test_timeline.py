"""Resource timelines: interval placement, preemption, mode windows."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import SchedulingError
from repro.sched.timeline import IntervalTimeline, ModeWindow, PpeModeTimeline


class TestIntervalTimeline:
    def test_empty_fit(self):
        tl = IntervalTimeline()
        assert tl.earliest_fit(5.0, 1.0) == 5.0

    def test_sequential_occupation(self):
        tl = IntervalTimeline()
        tl.occupy(0.0, 1.0, ("a",))
        start = tl.earliest_fit(0.0, 1.0)
        assert start == 1.0
        tl.occupy(start, 1.0, ("b",))
        assert tl.busy_time() == pytest.approx(2.0)

    def test_gap_filling(self):
        tl = IntervalTimeline()
        tl.occupy(0.0, 1.0, ("a",))
        tl.occupy(3.0, 1.0, ("b",))
        # A 1.5-long task fits the [1, 3) gap.
        assert tl.earliest_fit(0.0, 1.5) == 1.0
        # A 2.5-long one must go after everything.
        assert tl.earliest_fit(0.0, 2.5) == 4.0

    def test_overlap_rejected(self):
        tl = IntervalTimeline()
        tl.occupy(0.0, 2.0, ("a",))
        with pytest.raises(SchedulingError):
            tl.occupy(1.0, 1.0, ("b",))

    def test_running_at(self):
        tl = IntervalTimeline()
        tl.occupy(1.0, 2.0, ("a",))
        assert tl.running_at(1.5).owner == ("a",)
        assert tl.running_at(0.5) is None
        assert tl.running_at(3.0) is None  # half-open interval

    def test_span(self):
        tl = IntervalTimeline()
        assert tl.span() == (0.0, 0.0)
        tl.occupy(1.0, 1.0, ("a",))
        tl.occupy(5.0, 2.0, ("b",))
        assert tl.span() == (1.0, 7.0)

    def test_preempt_split(self):
        tl = IntervalTimeline()
        victim = None
        tl.occupy(0.0, 4.0, ("victim",))
        victim = tl.intervals[0]
        (start, end), victim_finish = tl.preempt_split(
            victim, preempt_at=1.0, inserted_duration=1.0, overhead=0.5,
            new_owner=("hi",),
        )
        assert (start, end) == (1.0, 2.0)
        # Remainder: 3.0 long, resumes at 2.5 -> finish 5.5.
        assert victim_finish == pytest.approx(5.5)
        assert len(tl) == 3

    def test_preempt_split_refuses_collision(self):
        tl = IntervalTimeline()
        tl.occupy(0.0, 4.0, ("victim",))
        tl.occupy(4.0, 1.0, ("next",))
        victim = tl.intervals[0]
        with pytest.raises(SchedulingError):
            tl.preempt_split(victim, 1.0, 1.0, 0.5, ("hi",))

    def test_preempt_point_must_be_inside(self):
        tl = IntervalTimeline()
        tl.occupy(0.0, 2.0, ("victim",))
        with pytest.raises(SchedulingError):
            tl.preempt_split(tl.intervals[0], 2.5, 1.0, 0.0, ("hi",))

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0.01, max_value=10),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_placements_never_overlap(self, jobs):
        tl = IntervalTimeline()
        for i, (ready, duration) in enumerate(jobs):
            start = tl.earliest_fit(ready, duration)
            tl.occupy(start, duration, (i,))
        intervals = sorted(tl.intervals, key=lambda iv: iv.start)
        for a, b in zip(intervals, intervals[1:]):
            assert a.end <= b.start + 1e-9


class TestPpeModeTimeline:
    def test_first_window_boots_free(self):
        tl = PpeModeTimeline()
        start, finish = tl.place(0, ready=0.5, duration=1.0, boot_time=0.2)
        assert (start, finish) == (0.5, 1.5)
        assert tl.reconfigurations == 0
        assert tl.boot_time_total == 0.0

    def test_same_mode_tasks_overlap(self):
        tl = PpeModeTimeline()
        tl.place(0, 0.0, 1.0, 0.2)
        start, finish = tl.place(0, 0.2, 1.0, 0.2)
        assert start == 0.2  # concurrent circuit regions
        assert tl.reconfigurations == 0

    def test_mode_switch_charges_boot(self):
        tl = PpeModeTimeline()
        tl.place(0, 0.0, 1.0, 0.2)
        start, finish = tl.place(1, 0.0, 1.0, 0.2)
        assert start == pytest.approx(1.2)  # drained + boot
        assert tl.reconfigurations == 1
        assert tl.boot_time_total == pytest.approx(0.2)

    def test_gap_insertion_between_windows(self):
        tl = PpeModeTimeline()
        tl.place(0, 0.0, 1.0, 0.1)
        tl.place(1, 10.0, 1.0, 0.1)
        # A mode-2 task fits the big gap with boots on both sides.
        start, finish = tl.place(2, 2.0, 1.0, 0.1)
        assert start == pytest.approx(2.0)
        assert finish < 10.0 - 0.1 + 1e-9
        assert tl.reconfigurations == 2

    def test_prepend_before_first_window(self):
        tl = PpeModeTimeline()
        tl.place(0, 5.0, 1.0, 0.1)
        start, finish = tl.place(1, 0.0, 1.0, 0.1)
        assert start == 0.0  # becomes the power-up configuration
        # Old first window now reboots; count reflects the switch.
        assert tl.reconfigurations == 1

    def test_same_mode_across_gap_is_free(self):
        tl = PpeModeTimeline()
        tl.place(0, 0.0, 1.0, 0.1)
        start, _ = tl.place(0, 5.0, 1.0, 0.1)
        assert start == 5.0
        assert tl.reconfigurations == 0

    def test_alternating_modes_count_switches(self):
        tl = PpeModeTimeline()
        for k in range(4):
            tl.place(k % 2, ready=k * 2.0, duration=0.5, boot_time=0.1)
        assert tl.reconfigurations == 3

    def test_replica_allowed_modes_avoid_reboot(self):
        tl = PpeModeTimeline()
        tl.place(0, 0.0, 1.0, 0.2)
        # A task whose cluster is replicated in modes {0, 1} can join
        # the live mode-0 window instead of forcing a switch.
        start, finish = tl.place(
            1, 0.5, 0.2, 0.2, allowed={0: 0.2, 1: 0.2}
        )
        assert start == 0.5
        assert tl.reconfigurations == 0

    def test_busy_time_and_span(self):
        tl = PpeModeTimeline()
        tl.place(0, 0.0, 1.0, 0.1)
        tl.place(1, 2.0, 1.0, 0.1)
        assert tl.busy_time() == pytest.approx(2.0)
        lo, hi = tl.span()
        assert lo == 0.0
        assert hi == pytest.approx(3.0)  # boot fits inside the idle gap

    def test_negative_durations_rejected(self):
        tl = PpeModeTimeline()
        with pytest.raises(SchedulingError):
            tl.place(0, 0.0, -1.0, 0.0)
        with pytest.raises(SchedulingError):
            tl.place(0, 0.0, 1.0, -0.1)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.floats(min_value=0, max_value=50),
                st.floats(min_value=0.01, max_value=5),
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_windows_stay_ordered_and_gapped(self, jobs):
        """Invariant: windows are time-ordered, non-overlapping, and
        every mode switch has at least the boot time between windows."""
        boot = 0.25
        tl = PpeModeTimeline()
        for mode, ready, duration in jobs:
            tl.place(mode, ready, duration, boot)
        windows = tl.windows
        for a, b in zip(windows, windows[1:]):
            assert a.end <= b.start + 1e-9
            if a.mode != b.mode:
                assert b.start - a.end >= boot - 1e-9
