"""Differential oracle tests: every timeline implementation, one
behaviour.

Three layers, all driving ``tests/sched/oracle.py``:

* deterministic regression cases -- most notably the epsilon-sliver
  ``occupy`` collision the old neighbor-only fast-path check bisected
  past (found by this very oracle);
* Hypothesis stateful machines fuzzing serial and mode timelines with
  values snapped near TIME_EPS multiples, so comparisons land exactly
  on the epsilon boundaries the inlined fast-path arithmetic must
  reproduce;
* replay of committed operation traces recorded from real synthesis
  runs (``REPRO_TIMELINE_TRACE``; see ``tests/sched/traces/``).

On failure Hypothesis prints a ``reproduce_failure`` blob
(``print_blob=True``) -- paste it onto the failing test to replay the
exact sequence locally; CI's ``timeline-identity`` job surfaces it in
the log.
"""

import pathlib

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

import repro.perf.treetimeline as treetimeline
from repro.perf.treetimeline import TreeTimeline, resolve_timeline
from repro.units import TIME_EPS
from tests.sched.oracle import (
    PpeDifferential,
    SerialDifferential,
    check_ppe,
    check_serial,
    replay_trace,
)

TRACE_DIR = pathlib.Path(__file__).parent / "traces"

# Times snapped to a coarse grid mixed with TIME_EPS-scale offsets:
# sums and differences land within an epsilon of each other, which is
# exactly where the inlined comparisons could drift from time_lt /
# time_leq if an implementation cut a corner.
_coarse = st.integers(min_value=0, max_value=40).map(lambda k: k * 0.25)
_eps_jitter = st.integers(min_value=-3, max_value=3).map(
    lambda k: k * TIME_EPS
)
eps_times = st.builds(lambda a, b: max(0.0, a + b), _coarse, _eps_jitter)
eps_durations = st.one_of(
    st.just(0.0),
    st.integers(min_value=0, max_value=3).map(lambda k: k * TIME_EPS),
    st.integers(min_value=1, max_value=12).map(lambda k: k * 0.25),
)


class SerialOracleMachine(RuleBasedStateMachine):
    """Fuzz all serial implementations in lock-step.

    Every rule funnels through :meth:`SerialDifferential.step`, which
    asserts identical outcomes *and* identical interval dumps after
    each operation -- the invariant needs no separate @invariant.
    """

    def __init__(self):
        """Fresh differential per example."""
        super().__init__()
        self.diff = SerialDifferential()
        self.occupied = 0

    @rule(start=eps_times, duration=eps_durations)
    def occupy_somewhere(self, start, duration):
        """Raw occupy at an arbitrary (possibly colliding) position."""
        self.diff.step(("occupy", start, duration, ("raw", self.occupied)))
        self.occupied += 1

    @rule(ready=eps_times, duration=eps_durations)
    def occupy_at_fit(self, ready, duration):
        """The scheduler's idiom: earliest_fit then occupy there --
        must always succeed identically."""
        outcome, value = self.diff.step(("earliest_fit", ready, duration))
        assert outcome == "ok"
        result = self.diff.step(
            ("occupy", value, duration, ("fit", self.occupied))
        )
        assert result[0] == "ok", "fit placement may never collide"
        self.occupied += 1

    @rule(ready=eps_times, duration=eps_durations)
    def query_fit(self, ready, duration):
        """Pure gap query."""
        self.diff.step(("earliest_fit", ready, duration))

    @rule(
        ready=eps_times,
        duration=eps_durations,
        overhead=st.sampled_from([0.0, TIME_EPS, 0.05, 0.25]),
        max_segments=st.integers(min_value=1, max_value=5),
    )
    def query_split(self, ready, duration, overhead, max_segments):
        """Restricted-preemption splitting sweep."""
        self.diff.step(("split_fit", ready, duration, overhead, max_segments))

    @rule(when=eps_times)
    def query_point(self, when):
        """Point queries and reductions."""
        self.diff.step(("running_at", when))
        self.diff.step(("free_until_after", when))
        self.diff.step(("busy_time",))
        self.diff.step(("span",))
        self.diff.step(("len",))


class PpeOracleMachine(RuleBasedStateMachine):
    """Fuzz all mode-timeline implementations in lock-step.

    ``place`` with multi-mode ``allowed`` maps exercises the
    reconfiguration-window logic: joins into existing windows,
    inserts paying boot time after a different-mode predecessor, and
    the reboot-gap guard before a different-mode successor.
    """

    def __init__(self):
        """Fresh differential per example."""
        super().__init__()
        self.diff = PpeDifferential()

    @rule(
        mode=st.integers(min_value=0, max_value=3),
        ready=eps_times,
        duration=eps_durations,
        boot=st.sampled_from([0.0, TIME_EPS, 0.125, 0.5]),
    )
    def place_single(self, mode, ready, duration, boot):
        """Single-mode placement (the common scheduler call)."""
        result = self.diff.step(("place", mode, ready, duration, boot, None))
        assert result[0] == "ok"

    @rule(
        ready=eps_times,
        duration=eps_durations,
        allowed=st.dictionaries(
            st.integers(min_value=0, max_value=3),
            st.sampled_from([0.0, 0.125, 0.5]),
            min_size=1,
            max_size=4,
        ),
    )
    def place_multi(self, ready, duration, allowed):
        """Multi-mode placement (cluster replicated across modes)."""
        mode = min(allowed)
        result = self.diff.step(
            ("place", mode, ready, duration, allowed[mode], allowed)
        )
        assert result[0] == "ok"

    @rule()
    def reductions(self):
        """Reboot accounting and span reductions."""
        self.diff.step(("busy_time",))
        self.diff.step(("span",))
        self.diff.step(("reconfigurations",))
        self.diff.step(("boot_time_total",))


_fuzz_settings = settings(
    max_examples=60,
    stateful_step_count=40,
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)

TestSerialOracle = SerialOracleMachine.TestCase
TestSerialOracle.settings = _fuzz_settings
TestPpeOracle = PpeOracleMachine.TestCase
TestPpeOracle.settings = _fuzz_settings


@pytest.fixture(autouse=True)
def _small_blocks(monkeypatch):
    """Shrink the block size so short fuzz runs cross block splits."""
    monkeypatch.setattr(treetimeline, "_LOAD", 8)


class TestRegressions:
    """Deterministic cases the fuzzers once found (or nearly missed)."""

    def test_occupy_collision_behind_epsilon_sliver(self):
        """The latent fast-path edge: an interval inserted exactly at
        ``ready + TIME_EPS`` used to be bisected past during the
        collision check, letting a genuinely overlapping occupy
        through on the fast timeline while the linear reference
        raised.  All implementations must raise, with the reference's
        exact message."""
        ops = [
            ("occupy", 2 * TIME_EPS, 0.3, ("long",)),
            ("occupy", TIME_EPS, 0.0, ("sliver",)),
            # Collides with "long" (which hides past the sliver at the
            # bisected insertion index).
            ("occupy", TIME_EPS, 2 * TIME_EPS, ("collider",)),
        ]
        diff = check_serial(ops)
        outcome, message = diff.step(("len",))
        assert outcome == "ok" and message == 2
        # The linear reference rejected the collider; so must all.
        assert diff.step(("busy_time",))[0] == "ok"

    def test_collider_rejected_with_reference_message(self):
        """The collision error is part of the observable contract."""
        diff = SerialDifferential()
        diff.step(("occupy", 2 * TIME_EPS, 0.3, ("long",)))
        diff.step(("occupy", TIME_EPS, 0.0, ("sliver",)))
        outcome, message = diff.step(("occupy", TIME_EPS, 2 * TIME_EPS, ("c",)))
        assert outcome == "err"
        assert message.startswith("overlap:")

    def test_end_order_degradation_stays_identical(self):
        """An epsilon-sliver insert that breaks the end-sorted
        invariant must flip fast/tree timelines into their degraded
        linear fallback without an observable difference."""
        ops = [("occupy", float(i), 0.9, ("base", i)) for i in range(30)]
        # Zero-length sliver within epsilon of interval 5's start:
        # legal (no overlap) but end-order breaking.
        ops.append(("occupy", 5.0 + TIME_EPS, 0.0, ("sliver",)))
        ops.extend(
            ("earliest_fit", q, 0.5)
            for q in [0.0, 3.3, 5.0, 5.0 + TIME_EPS, 29.95, 100.0]
        )
        ops.append(("split_fit", 0.0, 3.0, 0.05, 4))
        check_serial(ops)

    def test_mode_window_reconfiguration_boundaries(self):
        """Reconfiguration windows at epsilon-adjacent boundaries:
        joins, different-mode inserts paying boot, and the
        reboot-gap guard before a following window."""
        ops = [
            ("place", 0, 0.0, 1.0, 0.5, None),
            ("place", 1, 0.0, 1.0, 0.5, None),        # must boot after
            ("place", 0, 0.5, 0.25, 0.5, None),       # join window 0
            ("place", 1, 1.5 + TIME_EPS, 0.5, 0.5, None),
            ("place", 2, 0.0, 0.125, 0.25, {0: 0.5, 2: 0.25}),
            ("reconfigurations",),
            ("boot_time_total",),
            ("busy_time",),
            ("span",),
        ]
        check_ppe(ops)

    def test_blocked_phase_spans_block_splits(self):
        """Enough in-order inserts to force several block splits; gap
        queries then walk across block boundaries."""
        ops = []
        for i in range(120):
            ops.append(("occupy", i * 1.0, 0.75, ("t", i)))
        ops.extend(("earliest_fit", q + 0.5, 0.25) for q in range(0, 120, 7))
        ops.append(("split_fit", 0.25, 2.0, 0.05, 6))
        diff = check_serial(ops)
        tree = diff.timelines["tree-eager"]
        assert type(tree).__name__ == "_BlockedTimeline"
        assert len(tree._bivs) > 3, "fuzz must actually cross block splits"


class TestResolveTimeline:
    """Mode selection and the environment kill switch."""

    def test_modes(self):
        for mode in ("list", "tree", "auto"):
            serial_cls, ppe_cls = resolve_timeline(mode)
            assert callable(serial_cls) and callable(ppe_cls)

    def test_unknown_mode_raises(self):
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError):
            resolve_timeline("btree")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(treetimeline.TIMELINE_ENV, "list")
        serial_cls, _ = resolve_timeline("tree")
        from repro.perf.fasttimeline import FastTimeline

        assert serial_cls is FastTimeline

    def test_env_typo_ignored(self, monkeypatch):
        monkeypatch.setenv(treetimeline.TIMELINE_ENV, "treeee")
        serial_cls, _ = resolve_timeline("auto")
        assert serial_cls is TreeTimeline

    def test_eager_tree_converts_immediately(self):
        serial_cls, _ = resolve_timeline("tree")
        tl = serial_cls()
        tl.occupy(0.0, 1.0, ("a",))
        assert type(tl).__name__ == "_BlockedTimeline"


class TestTraceReplay:
    """Committed real-workload traces replayed through the oracle."""

    @pytest.mark.parametrize(
        "trace", sorted(TRACE_DIR.glob("*.jsonl.gz")), ids=lambda p: p.stem
    )
    def test_recorded_trace(self, trace):
        n_serial, n_ppe = replay_trace(str(trace))
        assert n_serial > 0, "trace must exercise serial timelines"

    def test_traces_exist(self):
        """The committed NGXM capture must stay in the tree."""
        assert list(TRACE_DIR.glob("*.jsonl.gz")), (
            "no committed timeline traces under tests/sched/traces/"
        )
