"""Validator unit behaviour on hand-built schedules."""

import pytest

from repro.sched.scheduler import Schedule, ScheduledEdge, ScheduledTask
from repro.sched.timeline import PpeModeTimeline
from repro.sched.validate import ValidationReport


class TestValidationReport:
    def test_ok_when_empty(self):
        report = ValidationReport()
        assert report.ok
        assert "ok" in repr(report)

    def test_violations_accumulate(self):
        report = ValidationReport()
        report.add("first")
        report.add("second")
        assert not report.ok
        assert len(report.violations) == 2
        assert "first" in repr(report)


class TestScheduleAccessors:
    def test_makespan(self):
        schedule = Schedule()
        assert schedule.makespan() == 0.0
        schedule.tasks[("g", 0, "a")] = ScheduledTask(
            key=("g", 0, "a"), pe_id="P", mode=0, start=0.0, finish=2.0
        )
        schedule.tasks[("g", 0, "b")] = ScheduledTask(
            key=("g", 0, "b"), pe_id="P", mode=0, start=2.0, finish=5.0
        )
        assert schedule.makespan() == 5.0

    def test_finish_of_missing_raises(self):
        from repro import SchedulingError

        with pytest.raises(SchedulingError):
            Schedule().finish_of(("g", 0, "x"))

    def test_reconfigurations_sum_over_devices(self):
        schedule = Schedule()
        t1 = PpeModeTimeline()
        t1.place(0, 0.0, 1.0, 0.1)
        t1.place(1, 0.0, 1.0, 0.1)
        t2 = PpeModeTimeline()
        t2.place(0, 0.0, 1.0, 0.1)
        schedule.ppe_timelines["A"] = t1
        schedule.ppe_timelines["B"] = t2
        assert schedule.reconfigurations == 1
