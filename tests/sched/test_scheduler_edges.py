"""Scheduler edge cases: zero-byte edges, ASIC concurrency, copies."""

import pytest

from repro import SystemSpec, Task, TaskGraph
from repro.graph.task import MemoryRequirement
from repro.resources import AsicType, LinkType, MemoryBank, ProcessorType
from repro.resources.library import ResourceLibrary
from repro.units import MB

from tests.sched.test_scheduler import schedule_spec


@pytest.fixture
def asic_library():
    lib = ResourceLibrary()
    lib.add_pe_type(ProcessorType(
        name="CPU", cost=50.0, memory_banks=(MemoryBank(16 * MB, 20.0),),
    ))
    lib.add_pe_type(AsicType(name="ASIC", cost=30.0, gates=10_000, pins=100))
    lib.add_link_type(LinkType(
        name="bus", cost=5.0, max_ports=8,
        access_times=tuple(1e-6 * (i + 1) for i in range(8)),
        bytes_per_packet=64, packet_tx_time=2e-6,
    ))
    return lib


class TestZeroByteEdges:
    def test_pure_precedence_costs_nothing(self, small_library):
        g = TaskGraph(name="z", period=0.1, deadline=0.05)
        for n in ("a", "b"):
            g.add_task(Task(name=n, exec_times={"CPU": 1e-3},
                            memory=MemoryRequirement(program=64)))
        g.add_edge("a", "b", bytes_=0)
        spec = SystemSpec("s", [g])
        schedule, *_ = schedule_spec(spec, small_library, {
            "z/s0000": ("CPU#0", 0), "z/s0001": ("CPU#1", 0),
        })
        edge = schedule.edges[("z", 0, "a", "b")]
        # Even across PEs, a zero-byte edge is pure precedence.
        assert edge.link_id is None
        assert edge.finish == edge.start


class TestAsicConcurrency:
    def test_asic_tasks_run_in_parallel(self, asic_library):
        g = TaskGraph(name="p", period=0.1, deadline=0.05)
        for n in ("x", "y"):
            g.add_task(Task(name=n, exec_times={"ASIC": 5e-3},
                            area_gates=100, pins=4))
        spec = SystemSpec("s", [g])
        schedule, *_ = schedule_spec(spec, asic_library, {
            "p/s0000": ("ASIC#0", 0), "p/s0001": ("ASIC#0", 0),
        })
        x = schedule.tasks[("p", 0, "x")]
        y = schedule.tasks[("p", 0, "y")]
        # Independent circuit blocks: both start at their ready time.
        assert x.start == y.start == 0.0


class TestCopies:
    def test_copies_scheduled_at_period_offsets(self, small_library):
        g = TaskGraph(name="c", period=0.05, deadline=0.04)
        g.add_task(Task(name="t", exec_times={"CPU": 1e-3},
                        memory=MemoryRequirement(program=64)))
        slow = TaskGraph(name="slow", period=0.1, deadline=0.1)
        slow.add_task(Task(name="s", exec_times={"CPU": 1e-3},
                           memory=MemoryRequirement(program=64)))
        spec = SystemSpec("s", [g, slow])  # hyperperiod 0.1 -> 2 copies of c
        schedule, *_ = schedule_spec(spec, small_library, {
            "c/s0000": ("CPU#0", 0), "slow/s0000": ("CPU#1", 0)})
        first = schedule.tasks[("c", 0, "t")]
        second = schedule.tasks[("c", 1, "t")]
        assert second.start >= first.start + 0.05 - 1e-9

    def test_link_transfers_of_copies_serialize(self, small_library):
        g = TaskGraph(name="c", period=0.05, deadline=0.05)
        for n in ("a", "b"):
            g.add_task(Task(name=n, exec_times={"CPU": 1e-4},
                            memory=MemoryRequirement(program=64)))
        g.add_edge("a", "b", bytes_=256)
        slow = TaskGraph(name="slow", period=0.1, deadline=0.1)
        slow.add_task(Task(name="s", exec_times={"CPU": 1e-3},
                           memory=MemoryRequirement(program=64)))
        spec = SystemSpec("s", [g, slow])
        schedule, *_ = schedule_spec(spec, small_library, {
            "c/s0000": ("CPU#0", 0), "c/s0001": ("CPU#1", 0),
            "slow/s0000": ("CPU#0", 0),
        })
        e0 = schedule.edges[("c", 0, "a", "b")]
        e1 = schedule.edges[("c", 1, "a", "b")]
        assert e0.link_id == e1.link_id
        assert e0.finish <= e1.start + 1e-9 or e1.finish <= e0.start + 1e-9
