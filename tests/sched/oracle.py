"""Differential timeline oracle: replay one op stream, compare all
implementations.

The repo's byte-identity contract says every timeline implementation
-- the naive linear :class:`~repro.sched.timeline.IntervalTimeline`
(the reference semantics), the bisect-indexed
:class:`~repro.perf.fasttimeline.FastTimeline`, and the blocked-index
:class:`~repro.perf.treetimeline.TreeTimeline` in each of its phases
-- must be observationally indistinguishable: same return values,
same exceptions (type *and* message, since error text reaches
reports), same interval/window dumps after every operation.

This module is the reusable harness behind that claim.  It replays an
explicit operation sequence against every registered implementation
simultaneously and asserts lock-step agreement after each step; the
stateful Hypothesis machines in ``test_timeline_oracle.py`` drive it
with randomized and epsilon-adversarial streams, and
:func:`replay_trace` feeds it operation streams recorded from real
synthesis runs (``REPRO_TIMELINE_TRACE``, see
:mod:`repro.sched.tlrecord`).

Operations are plain tuples, first element the op name, the rest its
arguments -- e.g. ``("occupy", 0.0, 1.0, ("task", 3))`` -- so traces,
fuzzers and regression cases all share one vocabulary:

* serial ops: ``occupy``, ``earliest_fit``, ``split_fit``,
  ``busy_time``, ``span``, ``running_at``, ``free_until_after``,
  ``len``;
* mode ops: ``place`` (mode, ready, duration, boot_time, allowed),
  ``busy_time``, ``span``, ``reconfigurations``, ``boot_time_total``.
"""

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.perf.fasttimeline import FastPpeModeTimeline, FastTimeline
from repro.perf.treetimeline import TreePpeModeTimeline, TreeTimeline
from repro.sched.timeline import IntervalTimeline, PpeModeTimeline


def _tree_eager() -> TreeTimeline:
    return TreeTimeline(convert_at=0)


def _tree_small() -> TreeTimeline:
    # Converts after a handful of intervals: a short fuzz run still
    # exercises the flat phase, the conversion, and the blocked phase.
    return TreeTimeline(convert_at=12)


#: name -> zero-arg factory; every serial-timeline implementation the
#: oracle holds to identical behaviour.  ``linear`` is the reference.
SERIAL_FACTORIES: Dict[str, Callable[[], IntervalTimeline]] = {
    "linear": IntervalTimeline,
    "fast": FastTimeline,
    "tree-eager": _tree_eager,
    "tree-auto": _tree_small,
}

#: name -> zero-arg factory for the programmable-device timelines.
PPE_FACTORIES: Dict[str, Callable[[], PpeModeTimeline]] = {
    "linear": PpeModeTimeline,
    "fast": FastPpeModeTimeline,
    "tree": TreePpeModeTimeline,
}


def run_serial_op(tl, op: tuple):
    """One serial-timeline operation; ``("ok", value)`` or
    ``("err", message)``."""
    kind = op[0]
    try:
        if kind == "occupy":
            return ("ok", tl.occupy(op[1], op[2], op[3]))
        if kind == "earliest_fit":
            return ("ok", tl.earliest_fit(op[1], op[2]))
        if kind == "split_fit":
            return ("ok", tl.split_fit(*op[1:]))
        if kind == "busy_time":
            return ("ok", tl.busy_time())
        if kind == "span":
            return ("ok", tl.span())
        if kind == "running_at":
            hit = tl.running_at(op[1])
            return ("ok", None if hit is None else (hit.start, hit.end, hit.owner))
        if kind == "free_until_after":
            return ("ok", tl.free_until_after(op[1]))
        if kind == "len":
            return ("ok", len(tl))
    except SchedulingError as exc:
        return ("err", str(exc))
    raise AssertionError("unknown serial op %r" % (kind,))


def run_ppe_op(tl, op: tuple):
    """One mode-timeline operation; ``("ok", value)`` or
    ``("err", message)``."""
    kind = op[0]
    try:
        if kind == "place":
            return ("ok", tl.place(*op[1:]))
        if kind == "busy_time":
            return ("ok", tl.busy_time())
        if kind == "span":
            return ("ok", tl.span())
        if kind == "reconfigurations":
            return ("ok", tl.reconfigurations)
        if kind == "boot_time_total":
            return ("ok", tl.boot_time_total)
    except SchedulingError as exc:
        return ("err", str(exc))
    raise AssertionError("unknown ppe op %r" % (kind,))


def dump_serial(tl) -> List[Tuple[float, float, tuple]]:
    """Exact state of a serial timeline: (start, end, owner) rows."""
    return [(iv.start, iv.end, iv.owner) for iv in tl.intervals]


def dump_ppe(tl) -> List[Tuple[int, float, float, float]]:
    """Exact state of a mode timeline: (mode, start, end, boot) rows."""
    return [(w.mode, w.start, w.end, w.boot_time) for w in tl.windows]


class _Differential:
    """Lock-step executor over one implementation family."""

    def __init__(self, factories: Dict[str, Callable], run_op, dump) -> None:
        self.names = list(factories)
        self.timelines = {name: factories[name]() for name in self.names}
        self._run_op = run_op
        self._dump = dump
        self.history: List[tuple] = []

    def step(self, op: tuple):
        """Run ``op`` everywhere; assert identical outcome and state.

        Returns the reference outcome ``("ok", value)`` /
        ``("err", message)``.
        """
        self.history.append(op)
        outcomes = {
            name: self._run_op(self.timelines[name], op) for name in self.names
        }
        reference = outcomes[self.names[0]]
        for name in self.names[1:]:
            assert outcomes[name] == reference, (
                "op %r diverged: %s=%r, %s=%r\nhistory: %r"
                % (op, self.names[0], reference, name, outcomes[name],
                   self.history)
            )
        dumps = {
            name: self._dump(self.timelines[name]) for name in self.names
        }
        ref_dump = dumps[self.names[0]]
        for name in self.names[1:]:
            assert dumps[name] == ref_dump, (
                "state diverged after %r: %s=%r, %s=%r\nhistory: %r"
                % (op, self.names[0], ref_dump, name, dumps[name],
                   self.history)
            )
        return reference


class SerialDifferential(_Differential):
    """Lock-step serial timelines across every implementation."""

    def __init__(self, factories: Optional[Dict[str, Callable]] = None) -> None:
        """Fresh timelines from ``factories`` (default: all
        registered serial implementations)."""
        super().__init__(
            factories or SERIAL_FACTORIES, run_serial_op, dump_serial
        )


class PpeDifferential(_Differential):
    """Lock-step mode timelines across every implementation."""

    def __init__(self, factories: Optional[Dict[str, Callable]] = None) -> None:
        """Fresh timelines from ``factories`` (default: all
        registered PPE implementations)."""
        super().__init__(factories or PPE_FACTORIES, run_ppe_op, dump_ppe)


def check_serial(ops: Sequence[tuple]) -> SerialDifferential:
    """Replay ``ops`` through a :class:`SerialDifferential`; returns
    it (post-state inspection) after asserting lock-step agreement."""
    diff = SerialDifferential()
    for op in ops:
        diff.step(op)
    return diff


def check_ppe(ops: Sequence[tuple]) -> PpeDifferential:
    """Replay ``ops`` through a :class:`PpeDifferential`; returns it
    after asserting lock-step agreement."""
    diff = PpeDifferential()
    for op in ops:
        diff.step(op)
    return diff


def _detuple(value):
    """JSON round-trip recovery: lists back to tuples (owners)."""
    if isinstance(value, list):
        return tuple(_detuple(v) for v in value)
    return value


def replay_trace(path: str) -> Tuple[int, int]:
    """Replay a recorded operation trace (see
    :mod:`repro.sched.tlrecord`) differentially.

    Reconstructs the per-timeline operation streams from the JSONL
    events and replays each through the matching differential
    (serial or PPE), asserting lock-step agreement on every step.
    Returns (serial timeline count, ppe timeline count) replayed.
    """
    from repro.sched.tlrecord import load_trace

    events = load_trace(path)
    kinds: Dict[int, str] = {}
    diffs: Dict[int, _Differential] = {}
    n_serial = n_ppe = 0
    for event in events:
        if "new" in event:
            tl_id = event["new"]
            kinds[tl_id] = event["kind"]
            if event["kind"] == "serial":
                diffs[tl_id] = SerialDifferential()
                n_serial += 1
            else:
                diffs[tl_id] = PpeDifferential()
                n_ppe += 1
            continue
        if "t" not in event:
            continue  # header / future metadata
        tl_id = event["t"]
        args = event["a"]
        if event["op"] == "occupy":
            op = ("occupy", args[0], args[1], _detuple(args[2]))
        elif event["op"] == "place":
            allowed = args[4]
            if allowed is not None:
                allowed = {int(k): v for k, v in allowed.items()}
            op = ("place", args[0], args[1], args[2], args[3], allowed)
        else:
            op = (event["op"], *args)
        diffs[tl_id].step(op)
    return n_serial, n_ppe
