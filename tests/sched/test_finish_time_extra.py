"""Finish-time report details: badness magnitudes and scoping."""

import pytest

from repro.sched.finish_time import DeadlineReport


class TestBadnessOrdering:
    def test_violation_count_dominates(self):
        one_miss = DeadlineReport(lateness={("g", 0, "a"): 5.0})
        two_misses = DeadlineReport(
            lateness={("g", 0, "a"): 0.1, ("g", 0, "b"): 0.1}
        )
        assert one_miss.badness() < two_misses.badness()

    def test_magnitude_breaks_ties(self):
        mild = DeadlineReport(lateness={("g", 0, "a"): 0.1})
        severe = DeadlineReport(lateness={("g", 0, "a"): 2.0})
        assert mild.badness() < severe.badness()

    def test_overload_excess_counts_as_magnitude(self):
        light = DeadlineReport(overloaded={"CPU#0": 1.1})
        heavy = DeadlineReport(overloaded={"CPU#0": 3.5})
        assert light.badness() < heavy.badness()
        assert light.badness()[0] == heavy.badness()[0] == 1

    def test_feasible_is_minimal(self):
        clean = DeadlineReport()
        assert clean.all_met
        assert clean.badness() == (0, 0.0)
        dirty = DeadlineReport(lateness={("g", 0, "a"): 1e-6})
        assert clean.badness() < dirty.badness()


class TestReportProperties:
    def test_negative_lateness_means_met(self):
        report = DeadlineReport(lateness={("g", 0, "a"): -0.5})
        assert report.deadlines_met
        assert report.n_missed == 0
        assert report.max_lateness == 0.0
        assert report.total_lateness == 0.0

    def test_mixed_lateness(self):
        report = DeadlineReport(
            lateness={("g", 0, "a"): -0.5, ("g", 0, "b"): 0.3, ("g", 1, "b"): 0.2}
        )
        assert report.n_missed == 2
        assert report.max_lateness == pytest.approx(0.3)
        assert report.total_lateness == pytest.approx(0.5)

    def test_overload_blocks_all_met(self):
        report = DeadlineReport(overloaded={"bus#0": 1.2})
        assert report.deadlines_met
        assert not report.all_met
