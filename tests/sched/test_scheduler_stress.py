"""Scheduler stress property: random placements over random graphs
always yield internally consistent schedules."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import GeneratorConfig, default_library, generate_spec
from repro.arch.architecture import Architecture
from repro.cluster.clustering import cluster_spec
from repro.cluster.priority import PriorityContext
from repro.core.crusade import _compute_priorities
from repro.graph.association import AssociationArray
from repro.resources.pe import PEKind
from repro.sched.scheduler import ScheduleRequest, build_schedule
from repro.sched.validate import validate_schedule


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    placement_seed=st.integers(min_value=0, max_value=1000),
)
def test_random_placements_schedule_consistently(seed, placement_seed):
    """Allocate every cluster to a RANDOM capable PE (ignoring
    capacity wisdom entirely), fully connect the PEs, schedule, and
    run the independent validator.  The scheduler must produce a
    precedence/exclusivity/mode-consistent schedule no matter how bad
    the placement is (deadlines may miss; structure may not)."""
    library = default_library()
    spec = generate_spec(GeneratorConfig(
        seed=seed, n_graphs=2, tasks_per_graph=6, compat_group_size=1,
    ))
    clustering = cluster_spec(spec, library)
    arch = Architecture(library)
    rng = random.Random(placement_seed)

    for cluster in clustering.ordered_by_priority():
        capable = [
            t for t in library.all_pe_types_by_cost()
            if t.name in cluster.allowed_pe_types
        ]
        pe_type = rng.choice(capable)
        pe = arch.new_pe(pe_type)
        mode = 0
        if pe.is_programmable and rng.random() < 0.3:
            mode = pe.new_mode().index
        arch.allocate_cluster(
            cluster.name, pe.id, mode,
            gates=cluster.area_gates, pins=cluster.pins, memory=cluster.memory,
        )
    # Fully connect with the cheapest bus family (new instances as the
    # port limit fills).
    bus = library.links_by_cost()[0]
    ids = sorted(arch.pes)
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            try:
                arch.connect(a, b, bus)
            except Exception:
                link = arch.new_link(bus)
                link.attach(a)
                link.attach(b)

    assoc = AssociationArray(spec, max_explicit_copies=2)
    priorities = _compute_priorities(spec, PriorityContext.pessimistic(library))
    schedule = build_schedule(ScheduleRequest(
        spec=spec, assoc=assoc, clustering=clustering, arch=arch,
        priorities=priorities,
    ))
    report = validate_schedule(schedule, spec, assoc, clustering, arch)
    assert report.ok, report.violations[:5]
