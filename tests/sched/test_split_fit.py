"""split_fit: the gap-splitting primitive behind restricted preemption."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import SchedulingError
from repro.sched.timeline import IntervalTimeline


def timeline_with(*intervals):
    tl = IntervalTimeline()
    for i, (start, duration) in enumerate(intervals):
        tl.occupy(start, duration, ("busy", i))
    return tl


class TestSplitFit:
    def test_empty_timeline_single_segment(self):
        tl = IntervalTimeline()
        segments = tl.split_fit(1.0, 2.0, overhead=0.1)
        assert segments == [(1.0, 3.0)]

    def test_cursor_at_interval_start_terminates(self):
        """Regression: a busy interval starting exactly at the ready
        time must advance the cursor, not loop forever."""
        tl = timeline_with((0.0, 2.0))
        segments = tl.split_fit(0.0, 1.0, overhead=0.1)
        assert segments == [(2.0, 3.0)]

    def test_splits_across_one_reservation(self):
        tl = timeline_with((2.0, 1.0))
        segments = tl.split_fit(0.0, 3.0, overhead=0.5)
        # 2.0 of work before the reservation, remainder + overhead after.
        assert segments[0] == (0.0, 2.0)
        assert segments[1][0] == 3.0
        assert segments[1][1] == pytest.approx(3.0 + 1.0 + 0.5)

    def test_tiny_gap_skipped(self):
        # Gap of 0.2 with overhead 0.5: not worth opening a segment.
        tl = timeline_with((1.0, 1.0), (2.2, 1.0))
        segments = tl.split_fit(0.9, 2.0, overhead=0.5)
        # First segment [0.9, 1.0) is before any overhead; the 0.2 gap
        # between reservations does less work than its overhead.
        starts = [s for s, _ in segments]
        assert 2.0 not in starts

    def test_max_segments_gives_up(self):
        tl = timeline_with(*[(i * 2.0 + 1.0, 1.5) for i in range(10)])
        assert tl.split_fit(0.0, 20.0, overhead=0.01, max_segments=3) is None

    def test_rejects_negative(self):
        tl = IntervalTimeline()
        with pytest.raises(SchedulingError):
            tl.split_fit(0.0, -1.0, 0.0)
        with pytest.raises(SchedulingError):
            tl.split_fit(0.0, 1.0, -0.1)

    @settings(max_examples=60, deadline=None)
    @given(
        busy=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=50),
                st.floats(min_value=0.1, max_value=5),
            ),
            max_size=6,
        ),
        ready=st.floats(min_value=0, max_value=20),
        duration=st.floats(min_value=0.1, max_value=10),
        overhead=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_split_properties(self, busy, ready, duration, overhead):
        """Whenever split_fit returns segments: they are time-ordered,
        disjoint from every busy interval, start at/after ready, and
        carry the full duration plus one overhead per resumption."""
        tl = IntervalTimeline()
        placed = []
        for i, (start, dur) in enumerate(busy):
            if all(start + dur <= s or e <= start for s, e in placed):
                tl.occupy(start, dur, ("busy", i))
                placed.append((start, start + dur))
        segments = tl.split_fit(ready, duration, overhead)
        if segments is None:
            return
        assert segments[0][0] >= ready - 1e-9
        total = 0.0
        previous_end = None
        for index, (s, e) in enumerate(segments):
            assert e > s
            if previous_end is not None:
                assert s >= previous_end - 1e-9
            previous_end = e
            for bs, be in placed:
                assert e <= bs + 1e-9 or be <= s + 1e-9
            total += e - s
        expected = duration + overhead * (len(segments) - 1)
        assert total == pytest.approx(expected, rel=1e-6, abs=1e-9)
