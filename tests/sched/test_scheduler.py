"""The list scheduler: precedence, contention, preemption, modes."""

import pytest

from repro import SystemSpec, Task, TaskGraph
from repro.arch.architecture import Architecture
from repro.cluster.clustering import cluster_spec, trivial_clustering
from repro.cluster.priority import PriorityContext
from repro.core.crusade import _compute_priorities
from repro.graph.association import AssociationArray
from repro.graph.task import MemoryRequirement
from repro.sched.finish_time import evaluate_deadlines
from repro.sched.scheduler import ScheduleRequest, build_schedule


def schedule_spec(spec, library, placements, preemption=True, boot_time_fn=None):
    """Helper: cluster trivially, place clusters per `placements`
    (cluster index -> (pe_type, mode or 'new')), schedule."""
    clustering = trivial_clustering(spec, library)
    arch = Architecture(library)
    # Instantiate PEs in sorted key order so "CPU#0" really gets the
    # instance id CPU#0.
    pe_instances = {}
    for pe_key in sorted({target[0] for target in placements.values()}):
        pe_instances[pe_key] = arch.new_pe(library.pe_type(pe_key.split("#")[0]))
        assert pe_instances[pe_key].id == pe_key
    for cluster in clustering.ordered_by_priority():
        target = placements.get(cluster.name)
        if target is None:
            continue
        pe_key, mode = target
        pe = pe_instances[pe_key]
        while pe.n_modes <= mode:
            pe.new_mode()
        arch.allocate_cluster(
            cluster.name, pe.id, mode,
            gates=cluster.area_gates, pins=cluster.pins, memory=cluster.memory,
        )
    # Connect everything with one bus.
    bus = library.links_by_cost()[0]
    ids = sorted(arch.pes)
    for a in ids:
        for b in ids:
            if a < b:
                arch.connect(a, b, bus)
    assoc = AssociationArray(spec, max_explicit_copies=2)
    priorities = _compute_priorities(spec, PriorityContext.pessimistic(library))
    request = ScheduleRequest(
        spec=spec, assoc=assoc, clustering=clustering, arch=arch,
        priorities=priorities, preemption=preemption, boot_time_fn=boot_time_fn,
    )
    return build_schedule(request), clustering, arch, assoc


def sw(name, wcet=1e-3):
    return Task(name=name, exec_times={"CPU": wcet},
                memory=MemoryRequirement(program=1024))


class TestPrecedence:
    def test_chain_order_respected(self, small_library, tiny_spec):
        placements = {
            "chain/s0000": ("CPU#0", 0),
            "chain/s0001": ("CPU#0", 0),
            "chain/s0002": ("CPU#0", 0),
        }
        schedule, *_ = schedule_spec(tiny_spec, small_library, placements)
        a = schedule.tasks[("chain", 0, "a")]
        b = schedule.tasks[("chain", 0, "b")]
        c = schedule.tasks[("chain", 0, "c")]
        assert a.finish <= b.start
        assert b.finish <= c.start

    def test_cross_pe_edge_takes_link_time(self, small_library, tiny_spec):
        same = schedule_spec(tiny_spec, small_library, {
            "chain/s0000": ("CPU#0", 0),
            "chain/s0001": ("CPU#0", 0),
            "chain/s0002": ("CPU#0", 0),
        })[0]
        split = schedule_spec(tiny_spec, small_library, {
            "chain/s0000": ("CPU#0", 0),
            "chain/s0001": ("CPU#1", 0),
            "chain/s0002": ("CPU#0", 0),
        })[0]
        # Same-PE transfers are free; the split run pays link time.
        edge_same = same.edges[("chain", 0, "a", "b")]
        edge_split = split.edges[("chain", 0, "a", "b")]
        assert edge_same.link_id is None
        assert edge_split.link_id is not None
        assert edge_split.finish > edge_split.start

    def test_every_instance_scheduled(self, small_library, tiny_spec):
        placements = {name: ("CPU#0", 0) for name in (
            "chain/s0000", "chain/s0001", "chain/s0002")}
        schedule, _, _, assoc = schedule_spec(tiny_spec, small_library, placements)
        assert len(schedule.tasks) == 3 * assoc.n_explicit("chain")


class TestProcessorContention:
    def test_serialization(self, small_library):
        g = TaskGraph(name="p", period=0.1, deadline=0.1)
        g.add_task(sw("x", 2e-3))
        g.add_task(sw("y", 2e-3))
        spec = SystemSpec("s", [g])
        schedule, *_ = schedule_spec(spec, small_library, {
            "p/s0000": ("CPU#0", 0), "p/s0001": ("CPU#0", 0),
        })
        x = schedule.tasks[("p", 0, "x")]
        y = schedule.tasks[("p", 0, "y")]
        assert x.finish <= y.start or y.finish <= x.start

    def test_context_switch_charged(self, small_library):
        g = TaskGraph(name="p", period=0.1, deadline=0.1)
        g.add_task(sw("x", 2e-3))
        spec = SystemSpec("s", [g])
        schedule, *_ = schedule_spec(spec, small_library, {"p/s0000": ("CPU#0", 0)})
        x = schedule.tasks[("p", 0, "x")]
        cs = small_library.pe_type("CPU").context_switch_time
        assert x.finish - x.start == pytest.approx(2e-3 + cs)

    def test_preemption_splits_around_reservations(self, small_library):
        # Two short urgent tasks reserve slots around time 5 ms and
        # 10 ms; a long low-priority task then splits across the gaps
        # (runs, is preempted, resumes with overhead) instead of
        # waiting behind everything.
        g = TaskGraph(name="p", period=0.1, deadline=0.1)
        g.add_task(Task(name="long", exec_times={"CPU": 8e-3},
                        memory=MemoryRequirement(program=10)))
        h = TaskGraph(name="q", period=0.1, deadline=6e-3, est=5e-3)
        h.add_task(Task(name="u1", exec_times={"CPU": 1e-3},
                        memory=MemoryRequirement(program=10)))
        spec = SystemSpec("s", [g, h])
        schedule, *_ = schedule_spec(spec, small_library, {
            "p/s0000": ("CPU#0", 0),
            "q/s0000": ("CPU#0", 0),
        })
        longtask = schedule.tasks[("p", 0, "long")]
        urgent = schedule.tasks[("q", 0, "u1")]
        overhead = small_library.pe_type("CPU").preemption_overhead
        assert schedule.preemptions == 1
        assert longtask.preempted
        assert longtask.start == 0.0  # started before the reservation
        # Finish accounts for the urgent slot plus one resumption.
        assert longtask.finish == pytest.approx(
            8e-3
            + small_library.pe_type("CPU").context_switch_time
            + (urgent.finish - urgent.start)
            + overhead,
            rel=1e-6,
        )

    def test_preemption_disabled(self, small_library):
        g = TaskGraph(name="p", period=0.1, deadline=0.1)
        g.add_task(Task(name="long", exec_times={"CPU": 50e-3},
                        memory=MemoryRequirement(program=10)))
        h = TaskGraph(name="q", period=0.1, deadline=0.06, est=1e-3)
        h.add_task(Task(name="urgent", exec_times={"CPU": 0.5e-3},
                        memory=MemoryRequirement(program=10)))
        spec = SystemSpec("s", [g, h])
        schedule, *_ = schedule_spec(spec, small_library, {
            "p/s0000": ("CPU#0", 0), "q/s0000": ("CPU#0", 0),
        }, preemption=False)
        assert schedule.preemptions == 0
        urgent = schedule.tasks[("q", 0, "urgent")]
        assert urgent.start >= 50e-3  # waits for the long task


class TestPpeModes:
    def hw(self, name, est, mode_graph):
        g = TaskGraph(name=name, period=1.0, deadline=0.5, est=est)
        g.add_task(Task(name=name + ".t", exec_times={"FPGA": 1e-3},
                        area_gates=100, pins=4))
        return g

    def test_mode_switch_inserts_boot(self, small_library):
        ga = self.hw("ga", 0.0, 0)
        gb = self.hw("gb", 0.5, 1)
        spec = SystemSpec("s", [ga, gb])
        boot = lambda pe, mode: 0.05
        schedule, *_ = schedule_spec(spec, small_library, {
            "ga/s0000": ("FPGA#0", 0), "gb/s0000": ("FPGA#0", 1),
        }, boot_time_fn=boot)
        assert schedule.reconfigurations >= 1
        tl = schedule.ppe_timelines["FPGA#0"]
        assert tl.boot_time_total > 0

    def test_same_mode_no_reconfig(self, small_library):
        ga = self.hw("ga", 0.0, 0)
        gb = self.hw("gb", 0.5, 0)
        spec = SystemSpec("s", [ga, gb])
        schedule, *_ = schedule_spec(spec, small_library, {
            "ga/s0000": ("FPGA#0", 0), "gb/s0000": ("FPGA#0", 0),
        }, boot_time_fn=lambda pe, mode: 0.05)
        assert schedule.reconfigurations == 0


class TestVirtualPlacement:
    def test_unallocated_cluster_scheduled_virtually(self, small_library, tiny_spec):
        # Only the first cluster is placed; the rest go virtual.
        schedule, *_ = schedule_spec(tiny_spec, small_library, {
            "chain/s0000": ("CPU#0", 0),
        })
        b = schedule.tasks[("chain", 0, "b")]
        assert b.pe_id is None
        assert b.finish - b.start == pytest.approx(
            tiny_spec.graph("chain").task("b").min_exec_time
        )


class TestDeadlineEvaluation:
    def test_all_met_for_feasible_chain(self, small_library, tiny_spec):
        placements = {name: ("CPU#0", 0) for name in (
            "chain/s0000", "chain/s0001", "chain/s0002")}
        schedule, clustering, arch, assoc = schedule_spec(
            tiny_spec, small_library, placements)
        report = evaluate_deadlines(schedule, tiny_spec, assoc)
        assert report.all_met
        assert report.max_lateness == 0.0

    def test_missed_deadline_reported(self, small_library):
        g = TaskGraph(name="m", period=0.1, deadline=1e-4)  # impossible
        g.add_task(sw("x", 5e-3))
        spec = SystemSpec("s", [g])
        schedule, clustering, arch, assoc = schedule_spec(
            spec, small_library, {"m/s0000": ("CPU#0", 0)})
        report = evaluate_deadlines(schedule, spec, assoc)
        assert not report.all_met
        assert report.n_missed > 0
        assert report.max_lateness > 0
        assert report.total_lateness > 0

    def test_overload_detected(self, small_library):
        # One CPU, utilization > 1 across copies: per-copy exec 60 ms
        # on a 50 ms period.
        g = TaskGraph(name="o", period=0.05, deadline=0.1)
        g.add_task(sw("x", 0.06))
        spec = SystemSpec("s", [g])
        schedule, clustering, arch, assoc = schedule_spec(
            spec, small_library, {"o/s0000": ("CPU#0", 0)})
        report = evaluate_deadlines(schedule, spec, assoc)
        assert report.overloaded
        assert not report.all_met

    def test_badness_ordering(self, small_library):
        g = TaskGraph(name="m", period=0.1, deadline=1e-4)
        g.add_task(sw("x", 5e-3))
        spec = SystemSpec("s", [g])
        schedule, clustering, arch, assoc = schedule_spec(
            spec, small_library, {"m/s0000": ("CPU#0", 0)})
        bad = evaluate_deadlines(schedule, spec, assoc).badness()
        assert bad > (0, 0.0)
