"""CLI table commands (scaled down for test speed)."""

import pytest

from repro.cli import main


@pytest.mark.slow
def test_cli_table2_single_example(capsys):
    code = main(["table2", "--scale", "0.03", "--examples", "A1TR"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Table 2" in out
    assert "A1TR" in out
    assert "Savings %" in out


@pytest.mark.slow
def test_cli_table3_single_example(capsys):
    code = main(["table3", "--scale", "0.03", "--examples", "A1TR"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Table 3" in out
    assert "CRUSADE-FT" in out
