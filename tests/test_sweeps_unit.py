"""Sweep utilities: SweepPoint math and renderer."""

import pytest

from repro.bench.sweeps import SweepPoint, render_sweep


class TestSweepPoint:
    def test_savings_pct(self):
        point = SweepPoint(x=1.0, tasks=10, cost_without=200.0,
                           cost_with=150.0, cpu_seconds=1.0, feasible=True)
        assert point.savings_pct == pytest.approx(25.0)

    def test_zero_baseline_guard(self):
        point = SweepPoint(x=1.0, tasks=10, cost_without=0.0,
                           cost_with=0.0, cpu_seconds=1.0, feasible=True)
        assert point.savings_pct == 0.0


class TestRenderSweep:
    def test_columns_and_rows(self):
        points = [
            SweepPoint(x=0.1, tasks=100, cost_without=1000, cost_with=800,
                       cpu_seconds=2.5, feasible=True),
            SweepPoint(x=0.2, tasks=200, cost_without=2000, cost_with=1400,
                       cpu_seconds=9.0, feasible=True),
        ]
        text = render_sweep("series", "scale", points)
        assert "series" in text
        assert "savings %" in text
        assert "20.0" in text  # first row savings
        assert "30.0" in text  # second row savings
        assert "200" in text
