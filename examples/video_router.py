#!/usr/bin/env python3
"""Video distribution router (Table 2's VDRTX) with full analysis.

Synthesizes the VDRTX example (MPEG encode/decode datapaths plus
control software) both ways, then uses the analysis package to explain
*where* dynamic reconfiguration saved money: which devices were
eliminated, which task graphs now time-share silicon, and what the
run-time reconfiguration load costs.

Run:  python examples/video_router.py  [scale]
"""

import sys

from repro import CrusadeConfig, crusade
from repro.analysis.compare import compare_results
from repro.analysis.sharing import mode_sharing_report
from repro.bench.examples import build_example
from repro.sched.gantt import render_gantt


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.08
    spec = build_example("VDRTX", scale=scale)
    print("VDRTX at scale %.2f: %d graphs, %d tasks"
          % (scale, len(spec.graphs), spec.total_tasks))
    print()

    baseline = crusade(spec, config=CrusadeConfig(reconfiguration=False))
    reconfig = crusade(spec, config=CrusadeConfig(reconfiguration=True),
                       baseline=baseline)
    assert baseline.feasible and reconfig.feasible

    print("=== what reconfiguration changed ===")
    print(compare_results(baseline, reconfig).render())
    print()

    print("=== how the silicon is shared ===")
    print(mode_sharing_report(reconfig).render())
    print()

    shared = [
        pe_id
        for pe_id, tl in reconfig.schedule.ppe_timelines.items()
        if tl.reconfigurations > 0
    ]
    if shared:
        pe_id = sorted(shared)[0]
        timeline = reconfig.schedule.ppe_timelines[pe_id]
        lo = timeline.windows[0].start
        hi = timeline.windows[-1].end
        print("=== %s mode timeline (one hyperperiod) ===" % pe_id)
        print(render_gantt(reconfig.schedule, width=70, span=(lo, hi)))


if __name__ == "__main__":
    main()
