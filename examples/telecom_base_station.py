#!/usr/bin/env python3
"""Synthesize a scaled telecom base-station system (Table 2's A1TR).

Runs CRUSADE with and without dynamic reconfiguration on the A1TR
example (digital cellular base-station workload, scaled to ~15 % of
the paper's 1126 tasks) and prints the Table 2 row plus a cost
breakdown -- showing where reconfiguration saves money.

Run:  python examples/telecom_base_station.py  [scale]
"""

import sys

from repro.arch.cost import cost_breakdown
from repro.bench.table2 import render_table2, run_table2_row


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    print("Synthesizing A1TR at scale %.2f (this runs CRUSADE twice)..." % scale)
    row = run_table2_row("A1TR", scale=scale)

    print()
    print(render_table2([row]))
    print()
    for label, result in (
        ("without reconfiguration", row.without),
        ("with reconfiguration", row.with_reconfig),
    ):
        breakdown = cost_breakdown(result.arch)
        print(
            "%-26s  %s  modes=%d  reconfigs/hyperperiod=%d"
            % (label, result.arch.summary(), result.n_modes, result.reconfigurations)
        )
        for category, dollars in breakdown.as_dict().items():
            if dollars:
                print("    %-11s $%8.0f" % (category, dollars))
    print()
    print("cost savings from dynamic reconfiguration: %.1f%%" % row.savings_pct)


if __name__ == "__main__":
    main()
