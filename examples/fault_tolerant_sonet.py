#!/usr/bin/env python3
"""CRUSADE-FT on a SONET-style system (Section 6).

Generates a telecom workload with availability requirements, runs the
fault-tolerance extension, and reports the fault-detection structures
added (assertions, duplicate-and-compare), the Markov availability
per task graph, and the spare PEs allocated for error recovery.

Run:  python examples/fault_tolerant_sonet.py
"""

from repro import GeneratorConfig, crusade_ft, generate_spec
from repro.ft.availability import module_unavailability


def main() -> None:
    spec = generate_spec(
        GeneratorConfig(
            seed=99,
            n_graphs=6,
            tasks_per_graph=14,
            compat_group_size=3,
            utilization=0.18,
            hw_only_fraction=0.35,
            mixed_fraction=0.15,
            assertion_prob=0.6,
            error_transparent_prob=0.45,
        ),
        name="sonet",
    )
    print("Input: %d graphs, %d tasks" % (len(spec.graphs), spec.total_tasks))
    for name, minutes in sorted(spec.unavailability.items()):
        print("  %-12s allowed downtime %5.1f min/year" % (name, minutes))
    print()

    result = crusade_ft(spec)

    transform = result.transform
    print("Fault-detection transformation:")
    print("  tasks after transform:  %d" % result.spec.total_tasks)
    print("  assertion tasks added:  %d" % transform.n_assertions)
    print("  duplicate-and-compare:  %d" % transform.n_duplicates)
    print("  checks saved by error transparency: %d"
          % transform.checks_saved_by_transparency)
    print()

    print("Architecture:", result.base.arch.summary())
    print("  deadline-feasible:", result.base.feasible)
    print()

    print("Service modules (Markov availability, MTTR = 2 h):")
    for name, module in sorted(result.spares.modules.items()):
        print(
            "  %-12s %d active + %d spare(s), FIT %.0f -> unavailability %.2e"
            % (
                name,
                module.n_active,
                module.spares,
                module.fit_per_unit,
                module_unavailability(module),
            )
        )
    print()

    print("Per-graph dependability:")
    for name in sorted(result.spec.unavailability):
        print(
            "  %-12s predicted %6.2f min/year (allowed %5.1f)"
            % (
                name,
                result.spares.downtime_minutes(name),
                result.spec.unavailability[name],
            )
        )
    print()
    print("spare PEs: %d ($%.0f)" % (
        result.spares.total_spares(), result.spares.spare_cost))
    print("total cost incl. spares: $%.0f" % result.cost)
    print("all requirements met:", result.feasible)


if __name__ == "__main__":
    main()
