#!/usr/bin/env python3
"""The paper's Figure 2, end to end.

Three task graphs: T1 runs all the time; T2 and T3 occupy disjoint
halves of a 200 ms frame, so they never overlap (compatible).  The
resource library has a small FPGA F1 (fits any two graphs) and a large
F2 (fits all three).  Without dynamic reconfiguration the system needs
two F1s or one F2; with it, a single F1 carries two configurations --
mode 1 = {T1, T2}, mode 2 = {T1, T3} -- with a reboot task T_rc
between the windows, exactly Figure 2(e).

Run:  python examples/reconfig_demo.py
"""

from repro import render_architecture
from repro.bench.figure2 import figure2_spec, run_figure2


def main() -> None:
    spec = figure2_spec()
    print("Specification:")
    for name in spec.graph_names():
        graph = spec.graph(name)
        print(
            "  %-3s period %.3fs  window [%.3f, %.3f)s  %d gates"
            % (
                name,
                graph.period,
                graph.est,
                graph.est + graph.deadline,
                graph.total_area_gates(),
            )
        )
    print("  compatibility: T2 <-> T3 never overlap")
    print()

    outcome = run_figure2()

    print("=== without dynamic reconfiguration ===")
    print(render_architecture(outcome.without))
    print()
    print("=== with dynamic reconfiguration ===")
    print(render_architecture(outcome.with_reconfig))
    print()

    timeline = outcome.with_reconfig.schedule.ppe_timelines.get("F1#0")
    if timeline is not None:
        print("F1#0 mode windows over one hyperperiod:")
        for window in timeline.windows:
            print(
                "  mode %d: [%.4f, %.4f)s" % (window.mode, window.start, window.end)
            )
        print("reconfigurations: %d" % timeline.reconfigurations)
        print("time spent rebooting: %.4f s" % timeline.boot_time_total)
    print()
    print(
        "cost: $%.0f -> $%.0f  (%.1f%% saved by dynamic reconfiguration)"
        % (outcome.without.cost, outcome.with_reconfig.cost, outcome.savings_pct)
    )


if __name__ == "__main__":
    main()
