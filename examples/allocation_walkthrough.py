#!/usr/bin/env python3
"""The paper's Figure 4 allocation walk-through, step by step.

Four clusters: C0 is software; C1-C3 need an FPGA.  C1 and C2 never
overlap (compatible); C3 overlaps C1.  This script replays CRUSADE's
allocation decisions and narrates each one, ending with the
Figure 4(e) architecture: a CPU for C0 and a single FPGA whose mode 1
holds {C1, C3} and mode 2 holds {C2}.

Run:  python examples/allocation_walkthrough.py
"""

from repro import (
    CrusadeConfig,
    MemoryRequirement,
    SystemSpec,
    Task,
    TaskGraph,
    crusade,
    render_architecture,
)
from repro.resources import (
    LinkType,
    MemoryBank,
    PEKind,
    PpeType,
    ProcessorType,
    ResourceLibrary,
)
from repro.units import MB


def build_library() -> ResourceLibrary:
    library = ResourceLibrary()
    library.add_pe_type(ProcessorType(
        name="CPU", cost=60.0, speed=1.0,
        memory_banks=(MemoryBank(16 * MB, 20.0),),
    ))
    library.add_pe_type(PpeType(
        name="FPGA", cost=110.0, device_kind=PEKind.FPGA,
        pfus=200, flip_flops=200, pins=64, config_bits_per_pfu=100,
    ))
    library.add_link_type(LinkType(
        name="bus", cost=5.0, max_ports=8,
        access_times=tuple(1e-6 * (i + 1) for i in range(8)),
        bytes_per_packet=64, packet_tx_time=2e-6,
    ))
    return library


def build_spec() -> SystemSpec:
    g0 = TaskGraph(name="C0", period=0.5, deadline=0.25)
    g0.add_task(Task(name="C0.t", exec_times={"CPU": 2e-3},
                     memory=MemoryRequirement(program=8192)))
    g1 = TaskGraph(name="C1", period=1.0, deadline=0.5, est=0.0)
    g1.add_task(Task(name="C1.t", exec_times={"FPGA": 1e-3},
                     area_gates=700, pins=12))
    g2 = TaskGraph(name="C2", period=1.0, deadline=0.5, est=0.5)
    g2.add_task(Task(name="C2.t", exec_times={"FPGA": 1e-3},
                     area_gates=700, pins=12))
    g3 = TaskGraph(name="C3", period=1.0, deadline=0.5, est=0.0)
    g3.add_task(Task(name="C3.t", exec_times={"FPGA": 1e-3},
                     area_gates=600, pins=12))
    return SystemSpec(
        "figure4", [g0, g1, g2, g3],
        compatibility=[("C1", "C2"), ("C2", "C3")],
        boot_time_requirement=0.2,
    )


def main() -> None:
    spec = build_spec()
    print(__doc__)
    print("Walkthrough (paper Figure 4):")
    print("  (b) C0 allocated first -> CPU + DRAM")
    print("  (c) C1 -> a fresh FPGA, mode 1  (FPGA_1^1)")
    print("  (d) C2 non-overlapping with C1 -> new mode 2 of the SAME "
          "FPGA (FPGA_2^1)")
    print("  (e) C3 overlaps C1 -> joins C1's mode to avoid a third mode")
    print()

    result = crusade(
        spec, library=build_library(), config=CrusadeConfig(max_explicit_copies=2)
    )
    print(render_architecture(result))
    print()

    fpga = result.arch.programmable_pes()[0]
    mode_of = {
        name: result.arch.placement_of(name + "/c000")[1]
        for name in ("C1", "C2", "C3")
    }
    print("FPGA mode assignment:", mode_of)
    assert mode_of["C1"] == mode_of["C3"] != mode_of["C2"]
    assert fpga.n_modes == 2
    print("matches Figure 4(e):", True)


if __name__ == "__main__":
    main()
