#!/usr/bin/env python3
"""Delay management: why CRUSADE caps utilization at ERUF 70 % / EPUF
80 % (Section 4.5, Table 1).

Sweeps resource utilization for the paper's ten functional blocks on
the place-and-route simulator and prints the Table 1 matrix, then
shows the pin-utilization (EPUF) effect on one circuit.

Run:  python examples/delay_management.py
"""

from repro.bench.table1 import render_table1, run_table1
from repro.delay.circuits import table1_circuit
from repro.delay.pnr import delay_increase, place_and_route
from repro.errors import RoutingError


def main() -> None:
    print(render_table1(run_table1()))
    print()
    print("EPUF effect on circuit 'fcsdp' at ERUF = 0.90:")
    circuit = table1_circuit("fcsdp")
    for epuf in (0.60, 0.70, 0.80, 0.90, 1.00):
        try:
            increase = delay_increase(circuit, 0.90, epuf=epuf)
            occupancy = place_and_route(circuit, 0.90, epuf=epuf).max_congestion
            print("  EPUF=%.2f  +%5.1f%% delay  (channel occupancy %.2f)"
                  % (epuf, increase, occupancy))
        except RoutingError:
            print("  EPUF=%.2f  Not routable" % epuf)
    print()
    print("Conclusion: at ERUF <= 0.70 and EPUF <= 0.80 the execution-")
    print("time vector used during co-synthesis survives place & route;")
    print("beyond the caps, routed delay grows and eventually the")
    print("circuit stops routing -- so CRUSADE never allocates past them.")


if __name__ == "__main__":
    main()
