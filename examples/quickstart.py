#!/usr/bin/env python3
"""Quickstart: co-synthesize a small embedded system with CRUSADE.

Builds a two-graph specification by hand -- a software control loop
and a hardware cell-processing pipeline -- runs CRUSADE against the
paper's 1997 resource catalog, and prints the synthesized
architecture.

Run:  python examples/quickstart.py
"""

from repro import (
    MemoryRequirement,
    SystemSpec,
    Task,
    TaskGraph,
    crusade,
    render_architecture,
)


def build_control_loop() -> TaskGraph:
    """A 10 ms software control loop: sense -> compute -> actuate."""
    graph = TaskGraph(name="control", period=0.010, deadline=0.008)
    graph.add_task(Task(
        name="sense",
        exec_times={"MC68360": 400e-6, "MC68040": 160e-6, "MC68060": 80e-6},
        memory=MemoryRequirement(program=8192, data=2048, stack=512),
    ))
    graph.add_task(Task(
        name="compute",
        exec_times={"MC68360": 1500e-6, "MC68040": 600e-6, "MC68060": 300e-6},
        memory=MemoryRequirement(program=16384, data=8192, stack=1024),
    ))
    graph.add_task(Task(
        name="actuate",
        exec_times={"MC68360": 300e-6, "MC68040": 120e-6, "MC68060": 60e-6},
        memory=MemoryRequirement(program=4096, data=1024, stack=512),
    ))
    graph.add_edge("sense", "compute", bytes_=256)
    graph.add_edge("compute", "actuate", bytes_=64)
    return graph


def build_cell_pipeline() -> TaskGraph:
    """A 1 ms hardware pipeline: framer -> scrambler -> crc.

    These tasks only have hardware execution times, so CRUSADE must
    allocate a programmable device or ASIC for them.
    """
    graph = TaskGraph(name="cells", period=0.001, deadline=0.001)
    hw = {"XC4025": 8e-6, "AT6005": 9e-6, "AT6010": 8e-6, "ORCA2T15": 9e-6}
    graph.add_task(Task(name="framer", exec_times=hw, area_gates=2200, pins=18))
    graph.add_task(Task(name="scrambler", exec_times=hw, area_gates=1500, pins=8))
    graph.add_task(Task(name="crc", exec_times=hw, area_gates=900, pins=8))
    graph.add_edge("framer", "scrambler", bytes_=53)
    graph.add_edge("scrambler", "crc", bytes_=53)
    return graph


def main() -> None:
    spec = SystemSpec(
        name="quickstart",
        graphs=[build_control_loop(), build_cell_pipeline()],
        boot_time_requirement=0.25,
    )
    result = crusade(spec)

    print(render_architecture(result))
    print()
    print("feasible:", result.feasible)
    print("total cost: $%.0f" % result.cost)
    print("synthesis took %.2f s" % result.cpu_seconds)
    for key, placed in sorted(result.schedule.tasks.items()):
        graph, copy, task = key
        if copy != 0:
            continue
        print(
            "  %-18s -> %-12s [%8.1f us, %8.1f us)"
            % (graph + "." + task, placed.pe_id, placed.start * 1e6, placed.finish * 1e6)
        )


if __name__ == "__main__":
    main()
